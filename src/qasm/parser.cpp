#include "qasm/parser.hpp"

#include "support/source_location.hpp"
#include "support/string_utils.hpp"

#include <cctype>
#include <cmath>
#include <functional>
#include <map>
#include <numbers>
#include <optional>
#include <vector>

namespace qirkit::qasm {
namespace {

using circuit::Circuit;
using circuit::Condition;
using circuit::OpKind;
using circuit::Operation;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t {
  Eof,
  Ident,
  Real,
  Int,
  String,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Semi,
  Comma,
  Arrow, // ->
  EqEq,  // ==
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
};

struct Token {
  TokKind kind = TokKind::Eof;
  std::string text;
  double real = 0;
  long long integer = 0;
  SourceLoc loc;
};

class Lexer {
public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> lexAll() {
    std::vector<Token> out;
    while (true) {
      Token t = next();
      const bool end = t.kind == TokKind::Eof;
      out.push_back(std::move(t));
      if (end) {
        return out;
      }
    }
  }

private:
  [[nodiscard]] char peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] bool atEnd() const { return pos_ >= src_.size(); }
  [[noreturn]] void fail(const std::string& m) {
    throw ParseError({line_, col_}, m);
  }

  Token next() {
    // Skip whitespace and // comments.
    while (!atEnd()) {
      if (std::isspace(static_cast<unsigned char>(peek())) != 0) {
        advance();
      } else if (peek() == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n') {
          advance();
        }
      } else {
        break;
      }
    }
    Token t;
    t.loc = {line_, col_};
    if (atEnd()) {
      return t;
    }
    const char c = peek();
    switch (c) {
    case '(': advance(); t.kind = TokKind::LParen; return t;
    case ')': advance(); t.kind = TokKind::RParen; return t;
    case '[': advance(); t.kind = TokKind::LBracket; return t;
    case ']': advance(); t.kind = TokKind::RBracket; return t;
    case '{': advance(); t.kind = TokKind::LBrace; return t;
    case '}': advance(); t.kind = TokKind::RBrace; return t;
    case ';': advance(); t.kind = TokKind::Semi; return t;
    case ',': advance(); t.kind = TokKind::Comma; return t;
    case '+': advance(); t.kind = TokKind::Plus; return t;
    case '*': advance(); t.kind = TokKind::Star; return t;
    case '/': advance(); t.kind = TokKind::Slash; return t;
    case '^': advance(); t.kind = TokKind::Caret; return t;
    case '-':
      advance();
      if (peek() == '>') {
        advance();
        t.kind = TokKind::Arrow;
      } else {
        t.kind = TokKind::Minus;
      }
      return t;
    case '=':
      advance();
      if (peek() == '=') {
        advance();
        t.kind = TokKind::EqEq;
        return t;
      }
      fail("unexpected '='");
    case '"': {
      advance();
      while (!atEnd() && peek() != '"') {
        t.text.push_back(advance());
      }
      if (atEnd()) {
        fail("unterminated string");
      }
      advance();
      t.kind = TokKind::String;
      return t;
    }
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      std::string text;
      bool isReal = false;
      while (!atEnd()) {
        const char d = peek();
        if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
          text.push_back(advance());
        } else if (d == '.' || d == 'e' || d == 'E') {
          isReal = true;
          text.push_back(advance());
          if ((d == 'e' || d == 'E') && (peek() == '+' || peek() == '-')) {
            text.push_back(advance());
          }
        } else {
          break;
        }
      }
      if (isReal) {
        const auto v = parseDouble(text);
        if (!v) {
          fail("malformed real literal");
        }
        t.kind = TokKind::Real;
        t.real = *v;
      } else {
        const auto v = parseInt(text);
        if (!v) {
          fail("malformed integer literal");
        }
        t.kind = TokKind::Int;
        t.integer = *v;
      }
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
                          peek() == '_')) {
        t.text.push_back(advance());
      }
      t.kind = TokKind::Ident;
      return t;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Register {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
};

/// An argument to a gate statement: register name + optional index.
struct QArg {
  std::string reg;
  std::optional<std::uint32_t> index;
};

/// Expression AST for gate-body angles (needs deferred evaluation because
/// gate parameters are bound at application time).
struct Expr {
  enum class Kind : std::uint8_t { Num, Param, Unary, Binary, Call } kind = Kind::Num;
  double num = 0;
  std::string name; // Param / Call function name
  char op = 0;      // Unary: '-'; Binary: + - * / ^
  std::vector<Expr> children;

  [[nodiscard]] double eval(const std::map<std::string, double>& params) const {
    switch (kind) {
    case Kind::Num:
      return num;
    case Kind::Param: {
      const auto it = params.find(name);
      if (it == params.end()) {
        throw SemanticError("unbound gate parameter '" + name + "'");
      }
      return it->second;
    }
    case Kind::Unary:
      return -children[0].eval(params);
    case Kind::Binary: {
      const double l = children[0].eval(params);
      const double r = children[1].eval(params);
      switch (op) {
      case '+': return l + r;
      case '-': return l - r;
      case '*': return l * r;
      case '/': return l / r;
      case '^': return std::pow(l, r);
      default: return 0;
      }
    }
    case Kind::Call: {
      const double a = children[0].eval(params);
      if (name == "sin") return std::sin(a);
      if (name == "cos") return std::cos(a);
      if (name == "tan") return std::tan(a);
      if (name == "exp") return std::exp(a);
      if (name == "ln") return std::log(a);
      if (name == "sqrt") return std::sqrt(a);
      throw SemanticError("unknown function '" + name + "'");
    }
    }
    return 0;
  }
};

/// A statement inside a user gate body.
struct GateBodyStmt {
  std::string gateName;
  std::vector<Expr> params;
  std::vector<std::string> qubits; // formal qubit names
  bool isBarrier = false;
};

struct GateDef {
  std::vector<std::string> paramNames;
  std::vector<std::string> qubitNames;
  std::vector<GateBodyStmt> body;
};

class Parser {
public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Circuit run() {
    expectIdent("OPENQASM");
    // version number: Real (2.0) or Int
    if (at(TokKind::Real) || at(TokKind::Int)) {
      ++pos_;
    } else {
      fail("expected version number");
    }
    expect(TokKind::Semi, "';'");

    // First pass over statements to size the registers (so Circuit's add()
    // validation has the final widths).
    // Simpler: collect everything into a staging list, then build.
    while (!at(TokKind::Eof)) {
      parseStatement();
    }
    return std::move(circuit_);
  }

private:
  // -- cursor helpers ------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokKind k) const { return cur().kind == k; }
  [[nodiscard]] bool atIdent(std::string_view s) const {
    return at(TokKind::Ident) && cur().text == s;
  }
  Token take() { return tokens_[pos_++]; }
  void expect(TokKind k, const char* what) {
    if (!at(k)) {
      fail(std::string("expected ") + what);
    }
    ++pos_;
  }
  void expectIdent(std::string_view s) {
    if (!atIdent(s)) {
      fail("expected '" + std::string(s) + "'");
    }
    ++pos_;
  }
  [[noreturn]] void fail(const std::string& m) const {
    throw ParseError(cur().loc, m + " (got '" + cur().text + "')");
  }

  // -- registers ---------------------------------------------------------
  void declareQReg(const std::string& name, std::uint32_t size) {
    if (qregs_.count(name) != 0 || cregs_.count(name) != 0) {
      fail("redeclaration of register '" + name + "'");
    }
    qregs_[name] = {circuit_.numQubits(), size};
    qregOrder_.push_back(name);
    circuit_.setNumQubits(circuit_.numQubits() + size);
  }
  void declareCReg(const std::string& name, std::uint32_t size) {
    if (qregs_.count(name) != 0 || cregs_.count(name) != 0) {
      fail("redeclaration of register '" + name + "'");
    }
    cregs_[name] = {circuit_.numBits(), size};
    circuit_.setNumBits(circuit_.numBits() + size);
  }

  // -- expressions ----------------------------------------------------------
  Expr parseExpr() { return parseAdditive(); }

  Expr parseAdditive() {
    Expr lhs = parseMultiplicative();
    while (at(TokKind::Plus) || at(TokKind::Minus)) {
      const char op = at(TokKind::Plus) ? '+' : '-';
      ++pos_;
      Expr rhs = parseMultiplicative();
      Expr node;
      node.kind = Expr::Kind::Binary;
      node.op = op;
      node.children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(node);
    }
    return lhs;
  }

  Expr parseMultiplicative() {
    Expr lhs = parseUnary();
    while (at(TokKind::Star) || at(TokKind::Slash)) {
      const char op = at(TokKind::Star) ? '*' : '/';
      ++pos_;
      Expr rhs = parseUnary();
      Expr node;
      node.kind = Expr::Kind::Binary;
      node.op = op;
      node.children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(node);
    }
    return lhs;
  }

  Expr parseUnary() {
    if (at(TokKind::Minus)) {
      ++pos_;
      Expr node;
      node.kind = Expr::Kind::Unary;
      node.op = '-';
      node.children = {parseUnary()};
      return node;
    }
    return parsePower();
  }

  Expr parsePower() {
    Expr base = parsePrimary();
    if (at(TokKind::Caret)) {
      ++pos_;
      Expr exponent = parseUnary();
      Expr node;
      node.kind = Expr::Kind::Binary;
      node.op = '^';
      node.children = {std::move(base), std::move(exponent)};
      return node;
    }
    return base;
  }

  Expr parsePrimary() {
    Expr node;
    if (at(TokKind::Real)) {
      node.num = take().real;
      return node;
    }
    if (at(TokKind::Int)) {
      node.num = static_cast<double>(take().integer);
      return node;
    }
    if (atIdent("pi")) {
      ++pos_;
      node.num = std::numbers::pi;
      return node;
    }
    if (at(TokKind::Ident)) {
      const std::string name = take().text;
      if (at(TokKind::LParen)) {
        ++pos_;
        node.kind = Expr::Kind::Call;
        node.name = name;
        node.children = {parseExpr()};
        expect(TokKind::RParen, "')'");
        return node;
      }
      node.kind = Expr::Kind::Param;
      node.name = name;
      return node;
    }
    if (at(TokKind::LParen)) {
      ++pos_;
      Expr inner = parseExpr();
      expect(TokKind::RParen, "')'");
      return inner;
    }
    fail("expected expression");
  }

  // -- statements --------------------------------------------------------
  void parseStatement() {
    if (atIdent("include")) {
      ++pos_;
      if (!at(TokKind::String)) {
        fail("expected include file name");
      }
      const std::string file = take().text;
      if (file != "qelib1.inc") {
        fail("only qelib1.inc is available in this environment");
      }
      expect(TokKind::Semi, "';'");
      return;
    }
    if (atIdent("qreg") || atIdent("creg")) {
      const bool quantum = cur().text == "qreg";
      ++pos_;
      if (!at(TokKind::Ident)) {
        fail("expected register name");
      }
      const std::string name = take().text;
      expect(TokKind::LBracket, "'['");
      if (!at(TokKind::Int)) {
        fail("expected register size");
      }
      const auto size = static_cast<std::uint32_t>(take().integer);
      expect(TokKind::RBracket, "']'");
      expect(TokKind::Semi, "';'");
      if (quantum) {
        declareQReg(name, size);
      } else {
        declareCReg(name, size);
      }
      return;
    }
    if (atIdent("gate")) {
      parseGateDef();
      return;
    }
    if (atIdent("opaque")) {
      fail("opaque gates cannot be simulated");
    }
    if (atIdent("if")) {
      ++pos_;
      expect(TokKind::LParen, "'('");
      if (!at(TokKind::Ident)) {
        fail("expected creg name in condition");
      }
      const std::string regName = take().text;
      const auto reg = cregs_.find(regName);
      if (reg == cregs_.end()) {
        fail("unknown creg '" + regName + "'");
      }
      expect(TokKind::EqEq, "'=='");
      if (!at(TokKind::Int)) {
        fail("expected integer in condition");
      }
      const auto value = static_cast<std::uint64_t>(take().integer);
      expect(TokKind::RParen, "')'");
      const Condition cond{reg->second.offset, reg->second.size, value};
      parseQuantumOp(cond);
      return;
    }
    parseQuantumOp(std::nullopt);
  }

  void parseGateDef() {
    expectIdent("gate");
    if (!at(TokKind::Ident)) {
      fail("expected gate name");
    }
    const std::string name = take().text;
    GateDef def;
    if (at(TokKind::LParen)) {
      ++pos_;
      if (!at(TokKind::RParen)) {
        do {
          if (!at(TokKind::Ident)) {
            fail("expected parameter name");
          }
          def.paramNames.push_back(take().text);
        } while (acceptComma());
      }
      expect(TokKind::RParen, "')'");
    }
    do {
      if (!at(TokKind::Ident)) {
        fail("expected qubit name");
      }
      def.qubitNames.push_back(take().text);
    } while (acceptComma());
    expect(TokKind::LBrace, "'{'");
    while (!at(TokKind::RBrace)) {
      GateBodyStmt stmt;
      if (atIdent("barrier")) {
        ++pos_;
        stmt.isBarrier = true;
        // consume qubit list
        while (!at(TokKind::Semi)) {
          ++pos_;
        }
        expect(TokKind::Semi, "';'");
        def.body.push_back(std::move(stmt));
        continue;
      }
      if (!at(TokKind::Ident)) {
        fail("expected gate application in gate body");
      }
      stmt.gateName = take().text;
      if (at(TokKind::LParen)) {
        ++pos_;
        if (!at(TokKind::RParen)) {
          do {
            stmt.params.push_back(parseExpr());
          } while (acceptComma());
        }
        expect(TokKind::RParen, "')'");
      }
      do {
        if (!at(TokKind::Ident)) {
          fail("expected qubit name");
        }
        stmt.qubits.push_back(take().text);
      } while (acceptComma());
      expect(TokKind::Semi, "';'");
      def.body.push_back(std::move(stmt));
    }
    expect(TokKind::RBrace, "'}'");
    gateDefs_[name] = std::move(def);
  }

  bool acceptComma() {
    if (at(TokKind::Comma)) {
      ++pos_;
      return true;
    }
    return false;
  }

  QArg parseQArg() {
    if (!at(TokKind::Ident)) {
      fail("expected register reference");
    }
    QArg arg;
    arg.reg = take().text;
    if (at(TokKind::LBracket)) {
      ++pos_;
      if (!at(TokKind::Int)) {
        fail("expected index");
      }
      arg.index = static_cast<std::uint32_t>(take().integer);
      expect(TokKind::RBracket, "']'");
    }
    return arg;
  }

  /// Resolve a quantum argument list possibly containing whole registers
  /// (broadcast). Returns the broadcast width and per-arg resolvers.
  std::uint32_t broadcastWidth(const std::vector<QArg>& args) {
    std::uint32_t width = 1;
    for (const QArg& arg : args) {
      const auto reg = qregs_.find(arg.reg);
      if (reg == qregs_.end()) {
        fail("unknown qreg '" + arg.reg + "'");
      }
      if (!arg.index) {
        if (width != 1 && width != reg->second.size) {
          fail("mismatched broadcast widths");
        }
        width = reg->second.size;
      } else if (*arg.index >= reg->second.size) {
        fail("qubit index out of range for '" + arg.reg + "'");
      }
    }
    return width;
  }

  std::uint32_t resolveQubit(const QArg& arg, std::uint32_t lane) {
    const Register reg = qregs_.at(arg.reg);
    return reg.offset + (arg.index ? *arg.index : lane);
  }

  void parseQuantumOp(const std::optional<Condition>& cond) {
    if (atIdent("measure")) {
      ++pos_;
      const QArg q = parseQArg();
      expect(TokKind::Arrow, "'->'");
      if (!at(TokKind::Ident)) {
        fail("expected creg reference");
      }
      QArg c;
      c.reg = take().text;
      if (at(TokKind::LBracket)) {
        ++pos_;
        if (!at(TokKind::Int)) {
          fail("expected index");
        }
        c.index = static_cast<std::uint32_t>(take().integer);
        expect(TokKind::RBracket, "']'");
      }
      expect(TokKind::Semi, "';'");
      const auto qreg = qregs_.find(q.reg);
      const auto creg = cregs_.find(c.reg);
      if (qreg == qregs_.end()) {
        fail("unknown qreg '" + q.reg + "'");
      }
      if (creg == cregs_.end()) {
        fail("unknown creg '" + c.reg + "'");
      }
      if (q.index.has_value() != c.index.has_value()) {
        fail("measure must be register->register or qubit->bit");
      }
      if (q.index) {
        circuit_.add({OpKind::Measure,
                      {qreg->second.offset + *q.index},
                      {},
                      creg->second.offset + *c.index,
                      cond});
      } else {
        if (qreg->second.size != creg->second.size) {
          fail("measure register size mismatch");
        }
        for (std::uint32_t i = 0; i < qreg->second.size; ++i) {
          circuit_.add({OpKind::Measure,
                        {qreg->second.offset + i},
                        {},
                        creg->second.offset + i,
                        cond});
        }
      }
      return;
    }
    if (atIdent("reset")) {
      ++pos_;
      const QArg q = parseQArg();
      expect(TokKind::Semi, "';'");
      const std::uint32_t width = broadcastWidth({q});
      for (std::uint32_t lane = 0; lane < width; ++lane) {
        circuit_.add({OpKind::Reset, {resolveQubit(q, lane)}, {}, 0, cond});
      }
      return;
    }
    if (atIdent("barrier")) {
      ++pos_;
      std::vector<QArg> args;
      if (!at(TokKind::Semi)) {
        do {
          args.push_back(parseQArg());
        } while (acceptComma());
      }
      expect(TokKind::Semi, "';'");
      Operation op{OpKind::Barrier, {}, {}, 0, std::nullopt};
      for (const QArg& arg : args) {
        const auto reg = qregs_.find(arg.reg);
        if (reg == qregs_.end()) {
          fail("unknown qreg '" + arg.reg + "'");
        }
        if (arg.index) {
          op.qubits.push_back(reg->second.offset + *arg.index);
        } else {
          for (std::uint32_t i = 0; i < reg->second.size; ++i) {
            op.qubits.push_back(reg->second.offset + i);
          }
        }
      }
      circuit_.add(std::move(op));
      return;
    }
    // Gate application.
    if (!at(TokKind::Ident)) {
      fail("expected statement");
    }
    const std::string name = take().text;
    std::vector<double> params;
    if (at(TokKind::LParen)) {
      ++pos_;
      if (!at(TokKind::RParen)) {
        do {
          params.push_back(parseExpr().eval({}));
        } while (acceptComma());
      }
      expect(TokKind::RParen, "')'");
    }
    std::vector<QArg> args;
    do {
      args.push_back(parseQArg());
    } while (acceptComma());
    expect(TokKind::Semi, "';'");

    const std::uint32_t width = broadcastWidth(args);
    for (std::uint32_t lane = 0; lane < width; ++lane) {
      std::vector<std::uint32_t> qubits;
      qubits.reserve(args.size());
      for (const QArg& arg : args) {
        qubits.push_back(resolveQubit(arg, lane));
      }
      applyGate(name, params, qubits, cond);
    }
  }

  void applyGate(const std::string& name, const std::vector<double>& params,
                 const std::vector<std::uint32_t>& qubits,
                 const std::optional<Condition>& cond, unsigned depth = 0) {
    if (depth > 64) {
      throw SemanticError("gate expansion too deep (recursive gate?)");
    }
    static const std::map<std::string_view, OpKind> simple = {
        {"h", OpKind::H},     {"x", OpKind::X},       {"y", OpKind::Y},
        {"z", OpKind::Z},     {"s", OpKind::S},       {"sdg", OpKind::Sdg},
        {"t", OpKind::T},     {"tdg", OpKind::Tdg},   {"rx", OpKind::RX},
        {"ry", OpKind::RY},   {"rz", OpKind::RZ},     {"cx", OpKind::CX},
        {"CX", OpKind::CX},   {"cz", OpKind::CZ},     {"swap", OpKind::Swap},
        {"ccx", OpKind::CCX}, {"u3", OpKind::U3},     {"U", OpKind::U3}};
    const auto it = simple.find(name);
    if (it != simple.end()) {
      circuit_.add({it->second, qubits, params, 0, cond});
      return;
    }
    if (name == "id") {
      return;
    }
    if (name == "u1") {
      // u1(l) == rz(l) up to global phase.
      circuit_.add({OpKind::RZ, qubits, params, 0, cond});
      return;
    }
    if (name == "u2") {
      if (params.size() != 2) {
        throw SemanticError("u2 expects 2 parameters");
      }
      circuit_.add({OpKind::U3, qubits,
                    {std::numbers::pi / 2, params[0], params[1]}, 0, cond});
      return;
    }
    const auto def = gateDefs_.find(name);
    if (def == gateDefs_.end()) {
      throw SemanticError("unknown gate '" + name + "'");
    }
    if (params.size() != def->second.paramNames.size() ||
        qubits.size() != def->second.qubitNames.size()) {
      throw SemanticError("wrong arity for gate '" + name + "'");
    }
    std::map<std::string, double> paramEnv;
    for (std::size_t i = 0; i < params.size(); ++i) {
      paramEnv[def->second.paramNames[i]] = params[i];
    }
    std::map<std::string, std::uint32_t> qubitEnv;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      qubitEnv[def->second.qubitNames[i]] = qubits[i];
    }
    for (const GateBodyStmt& stmt : def->second.body) {
      if (stmt.isBarrier) {
        continue; // barriers inside gate bodies are optimization hints only
      }
      std::vector<double> innerParams;
      innerParams.reserve(stmt.params.size());
      for (const Expr& e : stmt.params) {
        innerParams.push_back(e.eval(paramEnv));
      }
      std::vector<std::uint32_t> innerQubits;
      innerQubits.reserve(stmt.qubits.size());
      for (const std::string& qn : stmt.qubits) {
        const auto q = qubitEnv.find(qn);
        if (q == qubitEnv.end()) {
          throw SemanticError("unknown qubit '" + qn + "' in gate body");
        }
        innerQubits.push_back(q->second);
      }
      applyGate(stmt.gateName, innerParams, innerQubits, cond, depth + 1);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Circuit circuit_;
  std::map<std::string, Register> qregs_;
  std::map<std::string, Register> cregs_;
  std::vector<std::string> qregOrder_;
  std::map<std::string, GateDef> gateDefs_;
};

} // namespace

circuit::Circuit parse(std::string_view source) {
  Lexer lexer(source);
  Parser parser(lexer.lexAll());
  return parser.run();
}

} // namespace qirkit::qasm
