/// \file parser.hpp
/// OpenQASM 2.0 parser onto the circuit IR — the ecosystem format the
/// paper contrasts QIR with (§II.A, Fig. 1 left).
///
/// Supported: OPENQASM 2.0 header, include "qelib1.inc" (gates provided as
/// builtins), qreg/creg (multiple registers, flattened), the qelib1 gate
/// set (h x y z s sdg t tdg rx ry rz u1 u2 u3 id cx cz swap ccx), the
/// builtin U/CX, user `gate` definitions (inlined at application), gate
/// broadcasting over registers, measure, reset, barrier, and
/// `if (creg == n)` conditions. Angle expressions support pi, + - * / ^,
/// unary minus, parentheses, and sin/cos/tan/exp/ln/sqrt.
#pragma once

#include "circuit/circuit.hpp"

#include <string_view>

namespace qirkit::qasm {

/// Parse OpenQASM 2.0 source into a circuit. Registers are flattened into
/// one qubit index space (declaration order) and one bit index space.
/// Throws qirkit::ParseError on malformed input.
[[nodiscard]] circuit::Circuit parse(std::string_view source);

} // namespace qirkit::qasm
