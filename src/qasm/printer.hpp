/// \file printer.hpp
/// OpenQASM 2.0 emission from the circuit IR (Fig. 1's left-hand format).
#pragma once

#include "circuit/circuit.hpp"

#include <string>

namespace qirkit::qasm {

/// Print \p circuit as OpenQASM 2.0. Qubits become one register `q`;
/// classical bits are partitioned into registers `c0, c1, ...` along the
/// boundaries of the conditions used, because OpenQASM 2 conditions test
/// whole registers. Throws SemanticError if the conditions overlap in a
/// way no register partition can express.
[[nodiscard]] std::string print(const circuit::Circuit& circuit);

} // namespace qirkit::qasm
