#include "interp/abi.hpp"

#include <cstring>

namespace qirkit::interp {

std::uint64_t Memory::allocate(std::uint64_t size) {
  // 8-byte align every allocation.
  const std::uint64_t aligned = (arena_.size() + 7) & ~std::uint64_t{7};
  arena_.resize(aligned + size);
  return kBase + aligned;
}

// Out of line and noreturn: the bounds-check fast path inlines into the
// dispatch loops, the throw (string formatting and all) stays cold.
void Memory::trapOutOfBounds(std::uint64_t address) {
  throw TrapError("memory access out of bounds at address " +
                      std::to_string(address),
                  ErrorCode::TrapOutOfBounds);
}

std::string Memory::readCString(std::uint64_t address) const {
  std::string out;
  char c = 0;
  while (true) {
    load(address + out.size(), &c, 1);
    if (c == '\0') {
      return out;
    }
    out.push_back(c);
    if (out.size() > 4096) {
      throw TrapError("unterminated string in memory",
                      ErrorCode::TrapOutOfBounds);
    }
  }
}

} // namespace qirkit::interp
