#include "interp/abi.hpp"

#include <cstring>

namespace qirkit::interp {

std::uint64_t Memory::allocate(std::uint64_t size) {
  // 8-byte align every allocation.
  const std::uint64_t aligned = (arena_.size() + 7) & ~std::uint64_t{7};
  arena_.resize(aligned + size);
  return kBase + aligned;
}

void Memory::check(std::uint64_t address, std::uint64_t size) const {
  if (address < kBase || address - kBase + size > arena_.size()) {
    throw TrapError("memory access out of bounds at address " +
                        std::to_string(address),
                    ErrorCode::TrapOutOfBounds);
  }
}

void Memory::store(std::uint64_t address, const void* data, std::uint64_t size) {
  check(address, size);
  std::memcpy(arena_.data() + (address - kBase), data, size);
}

void Memory::load(std::uint64_t address, void* data, std::uint64_t size) const {
  check(address, size);
  std::memcpy(data, arena_.data() + (address - kBase), size);
}

std::uint64_t Memory::storeInt(std::uint64_t address, std::int64_t value,
                               unsigned bytes) {
  std::uint64_t raw = static_cast<std::uint64_t>(value);
  check(address, bytes);
  std::memcpy(arena_.data() + (address - kBase), &raw, bytes);
  return address;
}

std::int64_t Memory::loadInt(std::uint64_t address, unsigned bytes,
                             bool signExtend) const {
  std::uint64_t raw = 0;
  check(address, bytes);
  std::memcpy(&raw, arena_.data() + (address - kBase), bytes);
  if (signExtend && bytes < 8) {
    const std::uint64_t signBit = std::uint64_t{1} << (bytes * 8 - 1);
    if ((raw & signBit) != 0) {
      raw |= ~((std::uint64_t{1} << (bytes * 8)) - 1);
    }
  }
  return static_cast<std::int64_t>(raw);
}

std::string Memory::readCString(std::uint64_t address) const {
  std::string out;
  char c = 0;
  while (true) {
    load(address + out.size(), &c, 1);
    if (c == '\0') {
      return out;
    }
    out.push_back(c);
    if (out.size() > 4096) {
      throw TrapError("unterminated string in memory",
                      ErrorCode::TrapOutOfBounds);
    }
  }
}

} // namespace qirkit::interp
