#include "interp/interpreter.hpp"

#include "ir/constant.hpp"
#include "passes/folding.hpp"
#include "support/cancel.hpp"
#include "support/faultinject.hpp"
#include "support/source_location.hpp"

#include <cassert>
#include <cstring>

namespace qirkit::interp {

using namespace qirkit::ir;

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

Interpreter::Interpreter(const ir::Module& module) : module_(module) {
  materializeGlobals();
}

void Interpreter::materializeGlobals() {
  for (const auto& global : module_.globals()) {
    const std::string& bytes = global->initializer();
    const std::uint64_t address = memory_.allocate(std::max<std::uint64_t>(
        1, bytes.size()));
    if (!bytes.empty()) {
      memory_.store(address, bytes.data(), bytes.size());
    }
    globalAddresses_[global.get()] = address;
  }
}

void Interpreter::reset() {
  memory_ = Memory();
  globalAddresses_.clear();
  materializeGlobals();
  stats_ = {};
  stepsTaken_ = 0;
}

std::uint64_t Interpreter::globalAddress(const GlobalVariable* g) const {
  const auto it = globalAddresses_.find(g);
  if (it == globalAddresses_.end()) {
    throw TrapError("reference to unmaterialized global @" + g->name());
  }
  return it->second;
}

RtValue Interpreter::evalConstant(const Value* v) const {
  switch (v->kind()) {
  case Value::Kind::ConstantInt:
    return RtValue::makeInt(static_cast<const ConstantInt*>(v)->value());
  case Value::Kind::ConstantFP:
    return RtValue::makeDouble(static_cast<const ConstantFP*>(v)->value());
  case Value::Kind::ConstantPointerNull:
    return RtValue::makePtr(0);
  case Value::Kind::ConstantIntToPtr:
    return RtValue::makePtr(static_cast<const ConstantIntToPtr*>(v)->address());
  case Value::Kind::Undef:
    return v->type()->isDouble() ? RtValue::makeDouble(0.0)
           : v->type()->isPointer()
               ? RtValue::makePtr(0)
               : RtValue::makeInt(0);
  case Value::Kind::GlobalVariable:
    return RtValue::makePtr(
        globalAddress(static_cast<const GlobalVariable*>(v)));
  default:
    throw TrapError("cannot evaluate value of kind " +
                    std::to_string(static_cast<int>(v->kind())));
  }
}

RtValue Interpreter::run(const ir::Function& fn, std::span<const RtValue> args) {
  stepsTaken_ = 0;
  return execute(fn, args, 0);
}

RtValue Interpreter::runEntryPoint() {
  const Function* entry = module_.entryPoint();
  if (entry == nullptr) {
    entry = module_.getFunction("main");
  }
  if (entry == nullptr || entry->isDeclaration()) {
    throw TrapError("module has no executable entry point");
  }
  return run(*entry, {});
}

RtValue Interpreter::execute(const ir::Function& fn, std::span<const RtValue> args,
                             unsigned depth) {
  if (depth > 512) {
    throw TrapError("call stack overflow (depth > 512)",
                    ErrorCode::ResourceLimit);
  }
  if (fn.isDeclaration()) {
    throw TrapError("cannot execute declaration @" + fn.name());
  }
  ++stats_.internalCalls;

  std::map<const Value*, RtValue> frame;
  const auto get = [&](const Value* v) -> RtValue {
    if (const auto* arg = dynamic_cast<const Argument*>(v)) {
      return args[arg->index()];
    }
    if (v->kind() == Value::Kind::Instruction) {
      const auto it = frame.find(v);
      if (it == frame.end()) {
        throw TrapError("use of value before definition (verifier not run?)");
      }
      return it->second;
    }
    return evalConstant(v);
  };

  const BasicBlock* block = fn.entry();
  const BasicBlock* previous = nullptr;
  while (true) {
    ++stats_.blocksEntered;
    bool branched = false;
    // Phase 1: phis read their incoming values simultaneously.
    std::vector<std::pair<const Instruction*, RtValue>> phiValues;
    std::size_t index = 0;
    for (; index < block->size(); ++index) {
      const Instruction* inst = block->instructions()[index].get();
      if (inst->op() != Opcode::Phi) {
        break;
      }
      const Value* incoming = inst->incomingValueFor(previous);
      if (incoming == nullptr) {
        throw TrapError("phi has no incoming value for executed edge");
      }
      phiValues.emplace_back(inst, get(incoming));
    }
    for (auto& [phi, value] : phiValues) {
      frame[phi] = value;
    }

    for (; index < block->size(); ++index) {
      const Instruction* inst = block->instructions()[index].get();
      if (++stepsTaken_ > stepLimit_) {
        throw TrapError("step limit exceeded (" + std::to_string(stepLimit_) + ")",
                        ErrorCode::StepBudgetExceeded);
      }
      ++stats_.instructionsExecuted;
      // Strided cancellation probe (same 1024-step stride as the VM).
      if (cancel_ != nullptr && (stepsTaken_ & 1023) == 0) {
        cancel_->checkpoint("interpreter");
      }
      const Opcode op = inst->op();

      if (isIntBinaryOp(op)) {
        const RtValue lhs = get(inst->operand(0));
        const RtValue rhs = get(inst->operand(1));
        std::int64_t result = 0;
        if (!passes::evalIntBinOp(op, inst->type()->bits(), lhs.i, rhs.i, result)) {
          throw TrapError(std::string("arithmetic trap in ") + opcodeName(op) +
                              " (division by zero or oversized shift)",
                          ErrorCode::TrapArithmetic);
        }
        frame[inst] = RtValue::makeInt(result);
        continue;
      }
      if (isFloatBinaryOp(op)) {
        frame[inst] = RtValue::makeDouble(passes::evalFloatBinOp(
            op, get(inst->operand(0)).d, get(inst->operand(1)).d));
        continue;
      }

      switch (op) {
      case Opcode::Ret:
        return inst->numOperands() == 1 ? get(inst->operand(0)) : RtValue::makeVoid();
      case Opcode::Br: {
        const BasicBlock* next = nullptr;
        if (inst->isConditionalBr()) {
          next = get(inst->brCondition()).i != 0 ? inst->successor(0)
                                                 : inst->successor(1);
        } else {
          next = inst->successor(0);
        }
        previous = block;
        block = next;
        branched = true;
        break;
      }
      case Opcode::Switch: {
        const std::int64_t cond = get(inst->operand(0)).i;
        const BasicBlock* next = inst->successor(0);
        for (unsigned c = 0; c < inst->numSwitchCases(); ++c) {
          if (inst->switchCaseValue(c)->value() == cond) {
            next = inst->switchCaseDest(c);
            break;
          }
        }
        previous = block;
        block = next;
        branched = true;
        break;
      }
      case Opcode::Unreachable:
        throw TrapError("executed 'unreachable'", ErrorCode::TrapUnreachable);
      case Opcode::Alloca:
        frame[inst] =
            RtValue::makePtr(memory_.allocate(inst->allocatedType()->storeSize()));
        continue;
      case Opcode::Load: {
        const std::uint64_t address = get(inst->operand(0)).p;
        const Type* type = inst->type();
        if (type->isDouble()) {
          double value = 0.0;
          memory_.load(address, &value, sizeof value);
          frame[inst] = RtValue::makeDouble(value);
        } else if (type->isPointer()) {
          std::uint64_t value = 0;
          memory_.load(address, &value, sizeof value);
          frame[inst] = RtValue::makePtr(value);
        } else {
          frame[inst] = RtValue::makeInt(memory_.loadInt(
              address, static_cast<unsigned>(type->storeSize()), true));
        }
        continue;
      }
      case Opcode::Store: {
        const RtValue value = get(inst->operand(0));
        const std::uint64_t address = get(inst->operand(1)).p;
        const Type* type = inst->operand(0)->type();
        if (type->isDouble()) {
          memory_.store(address, &value.d, sizeof value.d);
        } else if (type->isPointer()) {
          memory_.store(address, &value.p, sizeof value.p);
        } else {
          memory_.storeInt(address, value.i, static_cast<unsigned>(type->storeSize()));
        }
        continue;
      }
      case Opcode::ICmp: {
        const Value* lhsV = inst->operand(0);
        const RtValue lhs = get(lhsV);
        const RtValue rhs = get(inst->operand(1));
        const bool ptrCmp = lhsV->type()->isPointer();
        const std::int64_t li = ptrCmp ? static_cast<std::int64_t>(lhs.p) : lhs.i;
        const std::int64_t ri = ptrCmp ? static_cast<std::int64_t>(rhs.p) : rhs.i;
        const unsigned bits = ptrCmp ? 64 : lhsV->type()->bits();
        frame[inst] =
            RtValue::makeInt(passes::evalICmp(inst->icmpPred(), bits, li, ri) ? 1 : 0);
        continue;
      }
      case Opcode::FCmp:
        frame[inst] = RtValue::makeInt(
            passes::evalFCmp(inst->fcmpPred(), get(inst->operand(0)).d,
                             get(inst->operand(1)).d)
                ? 1
                : 0);
        continue;
      case Opcode::ZExt: {
        const std::uint64_t raw =
            static_cast<std::uint64_t>(get(inst->operand(0)).i);
        const unsigned srcBits = inst->operand(0)->type()->bits();
        const std::uint64_t mask =
            srcBits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << srcBits) - 1;
        frame[inst] = RtValue::makeInt(static_cast<std::int64_t>(raw & mask));
        continue;
      }
      case Opcode::SExt:
        frame[inst] = RtValue::makeInt(get(inst->operand(0)).i);
        continue;
      case Opcode::Trunc: {
        const unsigned bits = inst->type()->bits();
        std::int64_t v = get(inst->operand(0)).i;
        if (bits < 64) {
          const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
          std::uint64_t raw = static_cast<std::uint64_t>(v) & mask;
          if ((raw >> (bits - 1)) & 1) {
            raw |= ~mask;
          }
          v = static_cast<std::int64_t>(raw);
        }
        frame[inst] = RtValue::makeInt(v);
        continue;
      }
      case Opcode::PtrToInt:
        frame[inst] =
            RtValue::makeInt(static_cast<std::int64_t>(get(inst->operand(0)).p));
        continue;
      case Opcode::IntToPtr:
        frame[inst] =
            RtValue::makePtr(static_cast<std::uint64_t>(get(inst->operand(0)).i));
        continue;
      case Opcode::SIToFP:
        frame[inst] = RtValue::makeDouble(static_cast<double>(get(inst->operand(0)).i));
        continue;
      case Opcode::UIToFP:
        frame[inst] = RtValue::makeDouble(
            static_cast<double>(static_cast<std::uint64_t>(get(inst->operand(0)).i)));
        continue;
      case Opcode::FPToSI:
        frame[inst] =
            RtValue::makeInt(static_cast<std::int64_t>(get(inst->operand(0)).d));
        continue;
      case Opcode::FPToUI:
        frame[inst] = RtValue::makeInt(static_cast<std::int64_t>(
            static_cast<std::uint64_t>(get(inst->operand(0)).d)));
        continue;
      case Opcode::Bitcast:
        frame[inst] = get(inst->operand(0));
        continue;
      case Opcode::Select:
        frame[inst] = get(inst->operand(0)).i != 0 ? get(inst->operand(1))
                                                   : get(inst->operand(2));
        continue;
      case Opcode::Call: {
        const Function* callee = inst->callee();
        std::vector<RtValue> callArgs(inst->numOperands());
        for (unsigned a = 0; a < inst->numOperands(); ++a) {
          callArgs[a] = get(inst->operand(a));
        }
        RtValue result;
        if (callee->isDeclaration()) {
          const ExternalHandler* handler = findExternal(callee->name());
          if (handler == nullptr) {
            // The paper's observation: lli "cannot handle the quantum
            // instructions and will raise an error" unless a runtime
            // provides the missing definitions.
            throw TrapError("call to undefined external @" + callee->name() +
                                " (no runtime binding registered)",
                            ErrorCode::TrapUnboundExternal);
          }
          ++stats_.externalCalls;
          fault::probe(fault::Site::RuntimeCall);
          ExternContext extern_{memory_};
          result = (*handler)(callArgs, extern_);
        } else {
          result = execute(*callee, callArgs, depth + 1);
        }
        if (!inst->type()->isVoid()) {
          frame[inst] = result;
        }
        continue;
      }
      default:
        throw TrapError(std::string("cannot interpret opcode ") + opcodeName(op));
      }
      break; // a branch was taken: restart the block loop
    }
    if (!branched) {
      throw TrapError("fell off the end of an unterminated block");
    }
  }
}

} // namespace qirkit::interp
