/// \file interpreter.hpp
/// An interpreter for the IR subset — the paper's `lli` analog (§III.C):
/// "A file that contains LLVM IR bytecode can be executed directly with
/// the lli tool … this can be overcome by providing the missing
/// definitions for the QIR extensions."
///
/// External functions (the QIR runtime) are bound by name; the interpreter
/// executes all classical structure (loops, conditionals, memory) and
/// dispatches `__quantum__*` calls to whatever runtime the embedder
/// registered.
#pragma once

#include "ir/module.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace qirkit::interp {

/// A dynamic value flowing through the interpreter. Integers carry their
/// canonical sign-extended representation; pointers are opaque 64-bit
/// addresses (arena offsets, qubit handles, or static QIR addresses —
/// the interpreter does not distinguish, the runtime does).
struct RtValue {
  enum class Kind : std::uint8_t { Void, Int, Double, Ptr };
  Kind kind = Kind::Void;
  std::int64_t i = 0;
  double d = 0.0;
  std::uint64_t p = 0;

  static RtValue makeVoid() { return {}; }
  static RtValue makeInt(std::int64_t v) { return {Kind::Int, v, 0.0, 0}; }
  static RtValue makeDouble(double v) { return {Kind::Double, 0, v, 0}; }
  static RtValue makePtr(std::uint64_t v) { return {Kind::Ptr, 0, 0.0, v}; }
};

/// Byte-addressable execution memory. A single arena; addresses are
/// offsets biased by kBase so that 0 (null) and small static QIR addresses
/// are never valid memory.
class Memory {
public:
  static constexpr std::uint64_t kBase = 0x100000;

  /// Allocate \p size bytes, zero-initialized; returns the address.
  std::uint64_t allocate(std::uint64_t size);

  void store(std::uint64_t address, const void* data, std::uint64_t size);
  void load(std::uint64_t address, void* data, std::uint64_t size) const;

  std::uint64_t storeInt(std::uint64_t address, std::int64_t value, unsigned bytes);
  [[nodiscard]] std::int64_t loadInt(std::uint64_t address, unsigned bytes,
                                     bool signExtend) const;

  [[nodiscard]] std::uint64_t bytesUsed() const noexcept { return arena_.size(); }

private:
  void check(std::uint64_t address, std::uint64_t size) const;
  std::vector<std::byte> arena_;
};

class Interpreter;

/// Context handed to external-function handlers.
struct ExternContext {
  Interpreter& interp;
  Memory& memory;
};

/// Statistics of one or more executions.
struct InterpStats {
  std::uint64_t instructionsExecuted = 0;
  std::uint64_t internalCalls = 0;
  std::uint64_t externalCalls = 0;
  std::uint64_t blocksEntered = 0;
};

/// Thrown when execution violates a dynamic rule (trap): division by zero,
/// out-of-bounds memory, missing external, step limit.
class TrapError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// The interpreter. Bind externals, then run a function.
class Interpreter {
public:
  using ExternalHandler =
      std::function<RtValue(std::span<const RtValue>, ExternContext&)>;

  explicit Interpreter(const ir::Module& module);

  /// Register a handler for calls to the declaration named \p name.
  void bindExternal(std::string name, ExternalHandler handler);
  [[nodiscard]] bool hasExternal(const std::string& name) const;

  /// Execute \p fn with \p args. Throws TrapError on dynamic violations.
  RtValue run(const ir::Function& fn, std::span<const RtValue> args = {});

  /// Execute the module's entry point (the "entry_point"-attributed
  /// function, else @main).
  RtValue runEntryPoint();

  [[nodiscard]] Memory& memory() noexcept { return memory_; }
  [[nodiscard]] const InterpStats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = {}; }

  /// Address of a materialized global (byte-array) in memory.
  [[nodiscard]] std::uint64_t globalAddress(const ir::GlobalVariable* g) const;

  /// Read a NUL-terminated string from memory (for output labels).
  [[nodiscard]] std::string readCString(std::uint64_t address) const;

  /// Upper bound on executed instructions per runEntryPoint/run call tree
  /// (default 256M) — terminates runaway programs.
  void setStepLimit(std::uint64_t limit) noexcept { stepLimit_ = limit; }

private:
  RtValue execute(const ir::Function& fn, std::span<const RtValue> args,
                  unsigned depth);
  RtValue evalConstant(const ir::Value* v) const;

  const ir::Module& module_;
  Memory memory_;
  std::map<std::string, ExternalHandler> externals_;
  std::map<const ir::GlobalVariable*, std::uint64_t> globalAddresses_;
  InterpStats stats_;
  std::uint64_t stepLimit_ = 1ULL << 28;
  std::uint64_t stepsTaken_ = 0;
};

} // namespace qirkit::interp
