/// \file interpreter.hpp
/// An interpreter for the IR subset — the paper's `lli` analog (§III.C):
/// "A file that contains LLVM IR bytecode can be executed directly with
/// the lli tool … this can be overcome by providing the missing
/// definitions for the QIR extensions."
///
/// External functions (the QIR runtime) are bound by name via the shared
/// ExternalRegistry ABI (see abi.hpp); the interpreter executes all
/// classical structure (loops, conditionals, memory) and dispatches
/// `__quantum__*` calls to whatever runtime the embedder registered.
///
/// This tree-walking engine is the *reference semantics*: the bytecode VM
/// (src/vm) is differentially tested against it.
#pragma once

#include "interp/abi.hpp"
#include "ir/module.hpp"

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace qirkit {
class CancelToken;
} // namespace qirkit

namespace qirkit::interp {

/// Statistics of one or more executions.
struct InterpStats {
  std::uint64_t instructionsExecuted = 0;
  std::uint64_t internalCalls = 0;
  std::uint64_t externalCalls = 0;
  std::uint64_t blocksEntered = 0;
};

/// The interpreter. Bind externals, then run a function.
class Interpreter : public ExternalRegistry {
public:
  explicit Interpreter(const ir::Module& module);

  /// Execute \p fn with \p args. Throws TrapError on dynamic violations.
  RtValue run(const ir::Function& fn, std::span<const RtValue> args = {});

  /// Execute the module's entry point (the "entry_point"-attributed
  /// function, else @main).
  RtValue runEntryPoint();

  [[nodiscard]] Memory& memory() noexcept { return memory_; }
  [[nodiscard]] const InterpStats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = {}; }

  /// Return to the freshly-constructed state: fresh memory with globals
  /// re-materialized (the deterministic bump allocator reproduces the
  /// exact same addresses) and zeroed statistics, keeping every external
  /// binding. The batched shot executor uses this to run N shots on one
  /// Interpreter instead of constructing one per shot — the interp-engine
  /// analog of Vm::reset().
  void reset();

  /// Address of a materialized global (byte-array) in memory.
  [[nodiscard]] std::uint64_t globalAddress(const ir::GlobalVariable* g) const;

  /// Read a NUL-terminated string from memory (for output labels).
  [[nodiscard]] std::string readCString(std::uint64_t address) const {
    return memory_.readCString(address);
  }

  /// Upper bound on executed instructions per runEntryPoint/run call tree
  /// (default 256M) — terminates runaway programs. The bytecode VM honors
  /// the same default and accounting (kDefaultStepLimit), so both engines
  /// reject runaway programs identically.
  static constexpr std::uint64_t kDefaultStepLimit = 1ULL << 28;
  void setStepLimit(std::uint64_t limit) noexcept { stepLimit_ = limit; }

  /// Install (or clear) a cooperative cancellation token; probed with the
  /// same stride as the VM dispatch loop (vm::kCancelStrideSteps), so
  /// both engines abandon an expired shot identically.
  void setCancelToken(const qirkit::CancelToken* token) noexcept {
    cancel_ = token;
  }

private:
  void materializeGlobals();
  RtValue execute(const ir::Function& fn, std::span<const RtValue> args,
                  unsigned depth);
  RtValue evalConstant(const ir::Value* v) const;

  const ir::Module& module_;
  Memory memory_;
  std::map<const ir::GlobalVariable*, std::uint64_t> globalAddresses_;
  InterpStats stats_;
  std::uint64_t stepLimit_ = kDefaultStepLimit;
  std::uint64_t stepsTaken_ = 0;
  const qirkit::CancelToken* cancel_ = nullptr;
};

} // namespace qirkit::interp
