/// \file fused.hpp
/// The fused-gate extension of the execution ABI. The bytecode compiler's
/// gate-fusion pass folds runs of adjacent `__quantum__qis__*` calls into
/// FusedBlock descriptors; an engine dispatches a whole block through a
/// FusedGateHost when the bound runtime provides one (the statevector
/// runtime does), and otherwise replays the original per-gate calls
/// through the ordinary extern bindings — so a runtime that has never
/// heard of fusion (circuit recorder, stabilizer backend) still observes
/// the exact source gate sequence.
#pragma once

#include "interp/abi.hpp"

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace qirkit::interp {

/// One source `__quantum__qis__*` call preserved for replay: the extern
/// slot it was compiled to and its fully-evaluated (constant) arguments.
struct FusedReplayCall {
  std::uint32_t slot = 0;
  std::vector<RtValue> args;
};

/// A fused run of gates, precomposed at compile time.
///  * Unitary1 — matrix is a 2x2 (row-major, 4 entries) on qubits[0].
///  * Unitary2 — matrix is a 4x4 (row-major, 16 entries) on qubits[0..1];
///    local basis index bit j corresponds to qubits[j].
///  * Diagonal — matrix holds the 2^k diagonal phases over qubits[0..k-1],
///    indexed by the same bit convention.
/// Qubit entries are *static* QIR addresses in first-use order, so a host
/// allocating qubits on the fly (paper §IV.A) assigns the same simulator
/// indices the unfused gate sequence would have.
struct FusedBlock {
  enum class Kind : std::uint8_t { Unitary1, Unitary2, Diagonal };

  Kind kind = Kind::Unitary1;
  std::uint32_t sourceGates = 0;
  std::vector<std::uint64_t> qubits;
  std::vector<std::complex<double>> matrix;
  std::vector<FusedReplayCall> replay;

  /// Upper bound on qubits.size() (Diagonal blocks; unitaries use 1 or 2).
  static constexpr unsigned kMaxQubits = 6;
};

/// Optional fast path a runtime can register via
/// ExternalRegistry::bindFusedHost. applyFusedBlock must be observably
/// equivalent to replaying block.replay through the runtime's own extern
/// handlers (same state evolution, same statistics attribution for
/// block.sourceGates gates).
class FusedGateHost {
public:
  virtual ~FusedGateHost() = default;
  virtual void applyFusedBlock(const FusedBlock& block) = 0;

  /// Optional wider fast path: a run of consecutive fused blocks handed
  /// down together, so a host backed by a dense state can apply the whole
  /// run chunk-at-a-time (StateVector::applyFusedSweep) instead of one
  /// full amplitude pass per block. Must be observably equivalent to
  /// calling applyFusedBlock on each block in order — which is exactly
  /// what the default does.
  virtual void applyFusedSweep(std::span<const FusedBlock> blocks) {
    for (const FusedBlock& block : blocks) {
      applyFusedBlock(block);
    }
  }
};

} // namespace qirkit::interp
