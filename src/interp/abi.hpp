/// \file abi.hpp
/// The execution ABI shared by every IR execution engine: dynamic values,
/// byte-addressable memory, trap errors, and the external-function
/// registry that QIR runtimes bind their `__quantum__*` handlers into.
///
/// Both the tree-walking interpreter (interp::Interpreter) and the
/// bytecode VM (vm::Vm) derive from ExternalRegistry, so a runtime's
/// bind() works unchanged against either engine (§III.C: the runtime
/// route only concerns the implementation of the quantum instructions —
/// not how the classical structure around them is executed).
#pragma once

#include "support/error.hpp"

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace qirkit::interp {

/// A dynamic value flowing through an execution engine. Integers carry
/// their canonical sign-extended representation; pointers are opaque
/// 64-bit addresses (arena offsets, qubit handles, or static QIR
/// addresses — the engine does not distinguish, the runtime does).
struct RtValue {
  enum class Kind : std::uint8_t { Void, Int, Double, Ptr };
  Kind kind = Kind::Void;
  std::int64_t i = 0;
  double d = 0.0;
  std::uint64_t p = 0;

  static RtValue makeVoid() { return {}; }
  static RtValue makeInt(std::int64_t v) { return {Kind::Int, v, 0.0, 0}; }
  static RtValue makeDouble(double v) { return {Kind::Double, 0, v, 0}; }
  static RtValue makePtr(std::uint64_t v) { return {Kind::Ptr, 0, 0.0, v}; }
};

/// Thrown when execution violates a dynamic rule (trap): division by zero,
/// out-of-bounds memory, missing external, step limit. A thin wrapper over
/// the structured taxonomy: trap sites pass the specific ErrorCode so
/// batch executors can classify, count, and selectively retry failures;
/// the bare one-argument form stays source-compatible with pre-taxonomy
/// throw sites.
class TrapError : public qirkit::Error {
public:
  explicit TrapError(const std::string& message,
                     ErrorCode code = ErrorCode::Trap, bool transient = false,
                     SourceLoc loc = {})
      : Error(code, message, loc, transient) {}
};

/// Byte-addressable execution memory. A single arena; addresses are
/// offsets biased by kBase so that 0 (null) and small static QIR addresses
/// are never valid memory.
class Memory {
public:
  static constexpr std::uint64_t kBase = 0x100000;

  /// Allocate \p size bytes, zero-initialized; returns the address.
  /// Allocation is deterministic (8-byte-aligned bump pointer), so two
  /// engines materializing the same allocations in the same order hand
  /// out identical addresses — the property differential testing and the
  /// bytecode compiler's static global addresses rely on.
  std::uint64_t allocate(std::uint64_t size);

  // The load/store fast paths are inline: they sit inside both engines'
  // dispatch loops, and an out-of-line call per memory opcode is pure
  // interpretation overhead. Only the trap path (cold by definition)
  // stays out of line.

  void store(std::uint64_t address, const void* data, std::uint64_t size) {
    check(address, size);
    std::memcpy(arena_.data() + (address - kBase), data, size);
  }
  void load(std::uint64_t address, void* data, std::uint64_t size) const {
    check(address, size);
    std::memcpy(data, arena_.data() + (address - kBase), size);
  }

  std::uint64_t storeInt(std::uint64_t address, std::int64_t value,
                         unsigned bytes) {
    const std::uint64_t raw = static_cast<std::uint64_t>(value);
    check(address, bytes);
    std::memcpy(arena_.data() + (address - kBase), &raw, bytes);
    return address;
  }
  [[nodiscard]] std::int64_t loadInt(std::uint64_t address, unsigned bytes,
                                     bool signExtend) const {
    std::uint64_t raw = 0;
    check(address, bytes);
    std::memcpy(&raw, arena_.data() + (address - kBase), bytes);
    if (signExtend && bytes < 8) {
      const std::uint64_t signBit = std::uint64_t{1} << (bytes * 8 - 1);
      if ((raw & signBit) != 0) {
        raw |= ~((std::uint64_t{1} << (bytes * 8)) - 1);
      }
    }
    return static_cast<std::int64_t>(raw);
  }

  /// Read a NUL-terminated string (for output labels).
  [[nodiscard]] std::string readCString(std::uint64_t address) const;

  [[nodiscard]] std::uint64_t bytesUsed() const noexcept { return arena_.size(); }

private:
  void check(std::uint64_t address, std::uint64_t size) const {
    if (address < kBase || address - kBase + size > arena_.size()) {
      trapOutOfBounds(address);
    }
  }
  [[noreturn]] static void trapOutOfBounds(std::uint64_t address);
  std::vector<std::byte> arena_;
};

/// Context handed to external-function handlers. Engine-neutral: handlers
/// only see the execution memory, never the engine that dispatched them.
struct ExternContext {
  Memory& memory;

  [[nodiscard]] std::string readCString(std::uint64_t address) const {
    return memory.readCString(address);
  }
};

class FusedGateHost; // fused.hpp — the fused-gate fast path (optional)

/// Named external-function bindings (the QIR runtime surface). Execution
/// engines derive from this; runtimes call bindExternal() against it.
class ExternalRegistry {
public:
  using ExternalHandler =
      std::function<RtValue(std::span<const RtValue>, ExternContext&)>;

  virtual ~ExternalRegistry() = default;

  /// Register a handler for calls to the declaration named \p name.
  virtual void bindExternal(std::string name, ExternalHandler handler) {
    externals_[std::move(name)] = std::move(handler);
  }
  /// Offer the engine a fused-gate fast path (nullptr withdraws it).
  /// Engines without fused dispatch ignore the offer — they never see
  /// fused ops, so the per-gate bindings above remain authoritative.
  virtual void bindFusedHost(FusedGateHost* host) { (void)host; }
  [[nodiscard]] bool hasExternal(const std::string& name) const {
    return externals_.find(name) != externals_.end();
  }
  /// Handler for \p name, or nullptr when unbound.
  [[nodiscard]] const ExternalHandler* findExternal(const std::string& name) const {
    const auto it = externals_.find(name);
    return it == externals_.end() ? nullptr : &it->second;
  }

private:
  std::map<std::string, ExternalHandler> externals_;
};

} // namespace qirkit::interp
