#include "circuit/generators.hpp"

#include "support/rng.hpp"

#include <numbers>

namespace qirkit::circuit {

Circuit bellPair(bool measured) { return ghz(2, measured); }

Circuit ghz(unsigned n, bool measured) {
  Circuit c(n, measured ? n : 0);
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) {
    c.cx(q, q + 1);
  }
  if (measured) {
    c.measureAll();
  }
  return c;
}

Circuit qft(unsigned n, bool measured) {
  Circuit c(n, measured ? n : 0);
  for (unsigned target = 0; target < n; ++target) {
    c.h(target);
    for (unsigned control = target + 1; control < n; ++control) {
      // Controlled phase rotation CP(pi / 2^(control-target)), expressed as
      // CZ-conjugated RZ pair (exact up to global phase):
      //   CP(l) = RZ(l/2) on control, RZ(l/2) on target, CX, RZ(-l/2), CX.
      const double lambda =
          std::numbers::pi / static_cast<double>(1U << (control - target));
      c.rz(lambda / 2, control);
      c.rz(lambda / 2, target);
      c.cx(control, target);
      c.rz(-lambda / 2, target);
      c.cx(control, target);
    }
  }
  for (unsigned q = 0; q < n / 2; ++q) {
    c.swap(q, n - 1 - q);
  }
  if (measured) {
    c.measureAll();
  }
  return c;
}

Circuit randomCircuit(unsigned n, unsigned layers, std::uint64_t seed, bool measured) {
  SplitMix64 rng(seed);
  Circuit c(n, measured ? n : 0);
  for (unsigned layer = 0; layer < layers; ++layer) {
    for (unsigned q = 0; q < n; ++q) {
      switch (rng.below(6)) {
      case 0: c.h(q); break;
      case 1: c.x(q); break;
      case 2: c.t(q); break;
      case 3: c.s(q); break;
      case 4: c.rz(rng.uniform() * 2 * std::numbers::pi, q); break;
      case 5: c.ry(rng.uniform() * 2 * std::numbers::pi, q); break;
      default: break;
      }
    }
    if (n >= 2) {
      for (unsigned pair = 0; pair < n / 2; ++pair) {
        const auto a = static_cast<std::uint32_t>(rng.below(n));
        auto b = static_cast<std::uint32_t>(rng.below(n));
        if (a == b) {
          b = (b + 1) % n;
        }
        c.cx(a, b);
      }
    }
  }
  if (measured) {
    c.measureAll();
  }
  return c;
}

Circuit hardwareEfficientAnsatz(unsigned n, unsigned layers, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Circuit c(n, 0);
  for (unsigned layer = 0; layer < layers; ++layer) {
    for (unsigned q = 0; q < n; ++q) {
      c.ry(rng.uniform() * 2 * std::numbers::pi, q);
      c.rz(rng.uniform() * 2 * std::numbers::pi, q);
    }
    for (unsigned q = 0; q + 1 < n; ++q) {
      c.cx(q, q + 1);
    }
  }
  return c;
}

Circuit repetitionCodeCycle(double theta, unsigned errorQubit) {
  // Qubits 0..2: data; 3..4: syndrome ancillas.
  // Bits 0..1: syndrome; 2..4: data readout.
  Circuit c(5, 5);
  // Prepare |psi> = RY(theta)|0> and encode across the three data qubits.
  c.ry(theta, 0);
  c.cx(0, 1);
  c.cx(0, 2);
  // Error injection.
  if (errorQubit < 3) {
    c.x(errorQubit);
  }
  // Syndrome extraction: ancilla 3 = parity(q0, q1), ancilla 4 = parity(q1, q2).
  c.cx(0, 3);
  c.cx(1, 3);
  c.cx(1, 4);
  c.cx(2, 4);
  c.measure(3, 0);
  c.measure(4, 1);
  // Conditioned corrections (syndrome value selects the flipped qubit):
  //   s = 01 -> q0, s = 11 -> q1, s = 10 -> q2   (bit0 = ancilla 3).
  c.add({OpKind::X, {0}, {}, 0, Condition{0, 2, 0b01}});
  c.add({OpKind::X, {1}, {}, 0, Condition{0, 2, 0b11}});
  c.add({OpKind::X, {2}, {}, 0, Condition{0, 2, 0b10}});
  // Read out the corrected data block.
  c.measure(0, 2);
  c.measure(1, 3);
  c.measure(2, 4);
  return c;
}

} // namespace qirkit::circuit
