#include "circuit/mapping.hpp"

#include "support/source_location.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace qirkit::circuit {

bool Target::connected(unsigned a, unsigned b) const noexcept {
  for (const auto& [x, y] : coupling) {
    if ((x == a && y == b) || (x == b && y == a)) {
      return true;
    }
  }
  return false;
}

std::vector<std::vector<unsigned>> Target::distances() const {
  const unsigned unreachable = numQubits + 1;
  std::vector<std::vector<unsigned>> dist(numQubits,
                                          std::vector<unsigned>(numQubits, unreachable));
  std::vector<std::vector<unsigned>> adjacency(numQubits);
  for (const auto& [a, b] : coupling) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  for (unsigned start = 0; start < numQubits; ++start) {
    dist[start][start] = 0;
    std::deque<unsigned> queue{start};
    while (!queue.empty()) {
      const unsigned node = queue.front();
      queue.pop_front();
      for (const unsigned next : adjacency[node]) {
        if (dist[start][next] == unreachable) {
          dist[start][next] = dist[start][node] + 1;
          queue.push_back(next);
        }
      }
    }
  }
  return dist;
}

Target Target::line(unsigned n) {
  Target t{"line-" + std::to_string(n), n, {}};
  for (unsigned i = 0; i + 1 < n; ++i) {
    t.coupling.emplace_back(i, i + 1);
  }
  return t;
}

Target Target::ring(unsigned n) {
  Target t = line(n);
  t.name = "ring-" + std::to_string(n);
  if (n > 2) {
    t.coupling.emplace_back(n - 1, 0);
  }
  return t;
}

Target Target::grid(unsigned rows, unsigned cols) {
  Target t{"grid-" + std::to_string(rows) + "x" + std::to_string(cols), rows * cols, {}};
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      const unsigned q = r * cols + c;
      if (c + 1 < cols) {
        t.coupling.emplace_back(q, q + 1);
      }
      if (r + 1 < rows) {
        t.coupling.emplace_back(q, q + cols);
      }
    }
  }
  return t;
}

Target Target::fullyConnected(unsigned n) {
  Target t{"full-" + std::to_string(n), n, {}};
  for (unsigned a = 0; a < n; ++a) {
    for (unsigned b = a + 1; b < n; ++b) {
      t.coupling.emplace_back(a, b);
    }
  }
  return t;
}

MappingResult mapCircuit(const Circuit& circuit, const Target& target) {
  if (circuit.numQubits() > target.numQubits) {
    // §IV.A: the hardware has a fixed number of qubits and the compiler
    // must ensure the program does not exceed it.
    throw SemanticError("program requires " + std::to_string(circuit.numQubits()) +
                        " qubits but target '" + target.name + "' has only " +
                        std::to_string(target.numQubits));
  }
  const auto dist = target.distances();

  MappingResult result;
  result.mapped = Circuit(target.numQubits, circuit.numBits());
  // layout: program qubit -> hardware qubit (identity initial placement).
  std::vector<unsigned> layout(circuit.numQubits());
  std::iota(layout.begin(), layout.end(), 0);
  // inverse: hardware qubit -> program qubit (or UINT_MAX when free).
  std::vector<unsigned> inverse(target.numQubits, ~0U);
  for (unsigned p = 0; p < layout.size(); ++p) {
    inverse[layout[p]] = p;
  }
  result.initialLayout = layout;

  const auto hardwareSwap = [&](unsigned ha, unsigned hb,
                                const std::optional<Condition>&) {
    result.mapped.swap(ha, hb);
    ++result.swapsInserted;
    const unsigned pa = inverse[ha];
    const unsigned pb = inverse[hb];
    std::swap(inverse[ha], inverse[hb]);
    if (pa != ~0U) {
      layout[pa] = hb;
    }
    if (pb != ~0U) {
      layout[pb] = ha;
    }
  };

  // Adjacency for routing steps.
  std::vector<std::vector<unsigned>> adjacency(target.numQubits);
  for (const auto& [a, b] : target.coupling) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }

  for (const Operation& op : circuit.ops()) {
    if (op.qubits.size() > 2) {
      throw SemanticError("mapCircuit requires <=2-qubit operations; run "
                          "decomposeToCXBasis first");
    }
    if (op.qubits.size() == 2) {
      unsigned ha = layout[op.qubits[0]];
      unsigned hb = layout[op.qubits[1]];
      if (dist[ha][hb] > target.numQubits) {
        throw SemanticError("target '" + target.name +
                            "' coupling graph is disconnected for this circuit");
      }
      // Greedy routing: step qubit a along a shortest path towards b.
      while (dist[ha][hb] > 1) {
        unsigned bestNext = ha;
        unsigned bestDist = dist[ha][hb];
        for (const unsigned next : adjacency[ha]) {
          if (dist[next][hb] < bestDist) {
            bestDist = dist[next][hb];
            bestNext = next;
          }
        }
        hardwareSwap(ha, bestNext, op.condition);
        ha = layout[op.qubits[0]];
        hb = layout[op.qubits[1]];
      }
    }
    Operation mappedOp = op;
    for (std::uint32_t& q : mappedOp.qubits) {
      q = layout[q];
    }
    result.mapped.add(std::move(mappedOp));
  }
  result.finalLayout = std::move(layout);
  return result;
}

bool respectsCoupling(const Circuit& circuit, const Target& target) {
  for (const Operation& op : circuit.ops()) {
    if (op.qubits.size() == 2 && !target.connected(op.qubits[0], op.qubits[1])) {
      return false;
    }
    if (op.qubits.size() > 2) {
      return false;
    }
  }
  return true;
}

} // namespace qirkit::circuit
