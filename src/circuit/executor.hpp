/// \file executor.hpp
/// Direct execution of a Circuit on the statevector simulator — the
/// baseline the QIR runtime route is benchmarked against (E4), and the
/// semantic oracle for round-trip equivalence tests.
#pragma once

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"
#include "support/rng.hpp"

#include <map>
#include <string>

namespace qirkit::circuit {

/// Result of one execution: final classical bits and final quantum state.
struct ExecutionResult {
  std::vector<bool> bits;
  sim::StateVector state;
};

/// Execute \p circuit once with measurement randomness seeded by \p seed.
[[nodiscard]] ExecutionResult execute(const Circuit& circuit, std::uint64_t seed = 1,
                                      qirkit::ThreadPool* pool = nullptr);

/// Execute \p circuit \p shots times; returns counts keyed by the bit
/// string (bit numBits-1 leftmost, OpenQASM convention).
[[nodiscard]] std::map<std::string, std::uint64_t>
sampleCounts(const Circuit& circuit, std::uint64_t shots, std::uint64_t seed = 1);

/// Format classical bits as a string, bit numBits-1 leftmost.
[[nodiscard]] std::string bitsToString(const std::vector<bool>& bits);

/// True if every operation of \p circuit is in the Clifford set
/// (H, S, Sdg, X, Y, Z, CX, CZ, Swap, Measure, Reset, Barrier).
[[nodiscard]] bool isCliffordCircuit(const Circuit& circuit);

/// Execute a Clifford circuit on the stabilizer simulator (polynomial in
/// qubit count — works far beyond the statevector limit). Conditions are
/// honored like in execute(). Throws SemanticError on non-Clifford gates.
[[nodiscard]] std::vector<bool> executeClifford(const Circuit& circuit,
                                                std::uint64_t seed = 1);

} // namespace qirkit::circuit
