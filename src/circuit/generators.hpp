/// \file generators.hpp
/// Workload generators for tests, examples, and the benchmark harness:
/// the circuit families the paper's motivating applications imply
/// (GHZ/Bell state preparation, QFT as an algorithm kernel, random
/// circuits as stress tests, hardware-efficient ansätze for the
/// variational workloads of §II.B).
#pragma once

#include "circuit/circuit.hpp"

#include <cstdint>

namespace qirkit::circuit {

/// Bell pair: H(0); CX(0,1); optional measurement — Fig. 1's circuit.
[[nodiscard]] Circuit bellPair(bool measured = true);

/// GHZ state on n qubits: H(0); CX(0,1); ...; CX(n-2,n-1).
[[nodiscard]] Circuit ghz(unsigned n, bool measured = true);

/// Quantum Fourier transform on n qubits (with final qubit-reversal swaps).
[[nodiscard]] Circuit qft(unsigned n, bool measured = false);

/// Random circuit: \p layers layers of random 1q rotations + random CX.
[[nodiscard]] Circuit randomCircuit(unsigned n, unsigned layers, std::uint64_t seed,
                                    bool measured = true);

/// Hardware-efficient variational ansatz: layers of RY/RZ + CX ladder,
/// parameters drawn deterministically from \p seed.
[[nodiscard]] Circuit hardwareEfficientAnsatz(unsigned n, unsigned layers,
                                              std::uint64_t seed);

/// 3-qubit bit-flip repetition code: encode |psi> (prepared by RY(theta)
/// on qubit 0), inject an X error on \p errorQubit (or none if >= 3),
/// extract the syndrome into two ancillas, and apply classically
/// conditioned corrections — the §IV.B error-correction feedback workload.
/// Uses 5 qubits and 5 bits (2 syndrome + 3 data readout).
[[nodiscard]] Circuit repetitionCodeCycle(double theta, unsigned errorQubit);

} // namespace qirkit::circuit
