/// \file optimizer.hpp
/// Circuit-level optimizations on the custom IR. These are exactly the
/// transformations the paper notes must be reimplemented when a tool
/// chooses the custom-IR route instead of reusing LLVM's passes
/// (§III.A: "one has to reimplement all the optimizations and
/// transformations that are already provided for LLVM IR 'for free'").
#pragma once

#include "circuit/circuit.hpp"

#include <cstddef>

namespace qirkit::circuit {

/// Cancel adjacent inverse pairs (H·H, X·X, CX·CX, S·Sdg, T·Tdg, ...)
/// acting on the same qubits with nothing in between on those qubits.
/// Conditioned operations, measurements, resets, and barriers act as
/// fences. Returns the number of operations removed.
std::size_t cancelInversePairs(Circuit& circuit);

/// Merge adjacent same-axis rotations on the same qubit
/// (RZ(a)·RZ(b) -> RZ(a+b)). Returns the number of operations removed.
std::size_t mergeRotations(Circuit& circuit);

/// Remove rotations whose angle is 0 (mod 2*pi) within \p eps. The removed
/// gate can differ from identity by a global phase (RZ(2*pi) = -I), which
/// is unobservable for an unconditioned whole-circuit gate.
std::size_t removeIdentityRotations(Circuit& circuit, double eps = 1e-12);

/// Statistics of a full optimization run.
struct OptimizeStats {
  std::size_t cancelled = 0;
  std::size_t merged = 0;
  std::size_t identitiesRemoved = 0;
  std::size_t sweeps = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return cancelled + merged + identitiesRemoved;
  }
};

/// Run all circuit optimizations to a fixpoint.
OptimizeStats optimizeCircuit(Circuit& circuit);

/// Lower CCX and Swap to {CX, 1q} basis (standard T-count-7 Toffoli
/// decomposition; Swap = 3 CX). Needed before mapping to 2-qubit-coupled
/// targets. Conditions are propagated to every emitted gate.
[[nodiscard]] Circuit decomposeToCXBasis(const Circuit& circuit);

/// Defer measurements towards the end of the circuit by commuting them
/// past operations on disjoint qubits. A circuit whose only base-profile
/// obstacle was interleaved (but feedback-free) measurement becomes
/// base-profile exportable ("a sequence of quantum instructions that ends
/// with the measurement of all qubits", §II.C). Measurements followed by
/// operations on the *same* qubit, and conditioned operations, block
/// deferral. Returns the number of measurements moved.
std::size_t deferMeasurements(Circuit& circuit);

} // namespace qirkit::circuit
