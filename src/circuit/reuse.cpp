#include "circuit/reuse.hpp"

#include <algorithm>
#include <limits>

namespace qirkit::circuit {

namespace {
constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
}

ReuseResult reuseQubits(const Circuit& circuit) {
  const unsigned n = circuit.numQubits();
  // Live ranges: [firstUse, lastUse] per program qubit. An unqualified
  // barrier touches every qubit but should not artificially extend live
  // ranges; it is ignored for liveness.
  std::vector<std::size_t> firstUse(n, kNever);
  std::vector<std::size_t> lastUse(n, kNever);
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Operation& op = circuit.op(i);
    if (op.kind == OpKind::Barrier && op.qubits.empty()) {
      continue; // a global barrier does not extend any live range
    }
    for (const std::uint32_t q : op.qubits) {
      if (firstUse[q] == kNever) {
        firstUse[q] = i;
      }
      lastUse[q] = i;
    }
  }

  ReuseResult result;
  result.qubitsBefore = n;
  result.assignment.assign(n, 0);

  // Greedy linear scan over operation order. freeAt[p] = the index after
  // which physical qubit p is free (kNever while in use).
  std::vector<std::size_t> freeAfter; // per physical qubit
  std::vector<bool> everUsed;         // whether a reset is needed on reuse
  std::vector<std::uint32_t> physicalFor(n, 0);
  std::vector<bool> assigned(n, false);

  std::vector<std::pair<std::size_t, std::uint32_t>> order; // (firstUse, qubit)
  for (unsigned q = 0; q < n; ++q) {
    if (firstUse[q] != kNever) {
      order.emplace_back(firstUse[q], q);
    }
  }
  std::sort(order.begin(), order.end());

  std::vector<std::pair<std::size_t, std::uint32_t>> resets; // before op i, reset p
  for (const auto& [start, q] : order) {
    // First fit: any physical qubit free strictly before `start`.
    std::uint32_t chosen = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t p = 0; p < freeAfter.size(); ++p) {
      if (freeAfter[p] != kNever && freeAfter[p] < start) {
        chosen = p;
        break;
      }
    }
    if (chosen == std::numeric_limits<std::uint32_t>::max()) {
      chosen = static_cast<std::uint32_t>(freeAfter.size());
      freeAfter.push_back(kNever);
      everUsed.push_back(false);
    } else {
      resets.emplace_back(start, chosen);
      ++result.resetsInserted;
    }
    everUsed[chosen] = true;
    physicalFor[q] = chosen;
    assigned[q] = true;
    // freeAfter[p] holds the lastUse of the program qubit currently on p;
    // since program qubits are processed in ascending firstUse order, the
    // first-fit check `freeAfter[p] < start` is exactly the non-overlap
    // condition.
    freeAfter[chosen] = lastUse[q];
  }

  result.qubitsAfter = static_cast<unsigned>(freeAfter.size());
  result.assignment = physicalFor;

  // Rewrite the circuit, inserting resets before each reuse start.
  Circuit out(result.qubitsAfter, circuit.numBits());
  std::sort(resets.begin(), resets.end());
  std::size_t nextReset = 0;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    while (nextReset < resets.size() && resets[nextReset].first == i) {
      out.reset(resets[nextReset].second);
      ++nextReset;
    }
    Operation op = circuit.op(i);
    for (std::uint32_t& q : op.qubits) {
      q = physicalFor[q];
    }
    out.add(std::move(op));
  }
  result.circuit = std::move(out);
  return result;
}

} // namespace qirkit::circuit
