/// \file circuit.hpp
/// The tool-specific "custom IR" of the paper's §III.A: a quantum circuit
/// as an operation list with classical bits, mid-circuit measurement, and
/// classically-conditioned gates. QIR and OpenQASM 2 importers/exporters
/// target this structure; circuit-level optimizations and the qubit mapper
/// operate on it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace qirkit::circuit {

/// Gate / operation kinds.
enum class OpKind : std::uint8_t {
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  RX,
  RY,
  RZ,
  U3,      // general single-qubit rotation (theta, phi, lambda)
  CX,      // controlled-X; qubits[0] = control
  CZ,
  Swap,
  CCX,     // qubits[0..1] = controls
  Measure, // qubits[0] -> bit
  Reset,
  Barrier, // optimization fence over its qubits (empty = all)
};

[[nodiscard]] const char* opKindName(OpKind kind) noexcept;
[[nodiscard]] unsigned opKindArity(OpKind kind) noexcept;  // qubit count (Barrier: 0 = variadic)
[[nodiscard]] unsigned opKindParams(OpKind kind) noexcept; // angle count
[[nodiscard]] bool isUnitary(OpKind kind) noexcept;

/// Classical condition: execute the operation iff the bit register slice
/// [firstBit, firstBit+numBits) equals \p value (OpenQASM 2 `if (c == v)`).
struct Condition {
  std::uint32_t firstBit = 0;
  std::uint32_t numBits = 1;
  std::uint64_t value = 1;

  friend bool operator==(const Condition&, const Condition&) = default;
};

/// One circuit operation.
struct Operation {
  OpKind kind = OpKind::H;
  std::vector<std::uint32_t> qubits;
  std::vector<double> params;
  std::uint32_t bit = 0; // Measure result target
  std::optional<Condition> condition;

  [[nodiscard]] bool touches(std::uint32_t qubit) const noexcept;
  friend bool operator==(const Operation&, const Operation&) = default;
};

/// A quantum circuit over `numQubits` qubits and `numBits` classical bits.
class Circuit {
public:
  Circuit() = default;
  Circuit(unsigned numQubits, unsigned numBits)
      : numQubits_(numQubits), numBits_(numBits) {}

  [[nodiscard]] unsigned numQubits() const noexcept { return numQubits_; }
  [[nodiscard]] unsigned numBits() const noexcept { return numBits_; }
  void setNumQubits(unsigned n);
  void setNumBits(unsigned n) { numBits_ = n; }

  [[nodiscard]] const std::vector<Operation>& ops() const noexcept { return ops_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] const Operation& op(std::size_t i) const { return ops_.at(i); }

  /// Append a validated operation (throws SemanticError on bad indices).
  void add(Operation op);

  // -- convenience builders ---------------------------------------------------
  void h(std::uint32_t q) { add({OpKind::H, {q}, {}, 0, {}}); }
  void x(std::uint32_t q) { add({OpKind::X, {q}, {}, 0, {}}); }
  void y(std::uint32_t q) { add({OpKind::Y, {q}, {}, 0, {}}); }
  void z(std::uint32_t q) { add({OpKind::Z, {q}, {}, 0, {}}); }
  void s(std::uint32_t q) { add({OpKind::S, {q}, {}, 0, {}}); }
  void sdg(std::uint32_t q) { add({OpKind::Sdg, {q}, {}, 0, {}}); }
  void t(std::uint32_t q) { add({OpKind::T, {q}, {}, 0, {}}); }
  void tdg(std::uint32_t q) { add({OpKind::Tdg, {q}, {}, 0, {}}); }
  void rx(double theta, std::uint32_t q) { add({OpKind::RX, {q}, {theta}, 0, {}}); }
  void ry(double theta, std::uint32_t q) { add({OpKind::RY, {q}, {theta}, 0, {}}); }
  void rz(double theta, std::uint32_t q) { add({OpKind::RZ, {q}, {theta}, 0, {}}); }
  void u3(double theta, double phi, double lambda, std::uint32_t q) {
    add({OpKind::U3, {q}, {theta, phi, lambda}, 0, {}});
  }
  void cx(std::uint32_t control, std::uint32_t target) {
    add({OpKind::CX, {control, target}, {}, 0, {}});
  }
  void cz(std::uint32_t a, std::uint32_t b) { add({OpKind::CZ, {a, b}, {}, 0, {}}); }
  void swap(std::uint32_t a, std::uint32_t b) {
    add({OpKind::Swap, {a, b}, {}, 0, {}});
  }
  void ccx(std::uint32_t c1, std::uint32_t c2, std::uint32_t t) {
    add({OpKind::CCX, {c1, c2, t}, {}, 0, {}});
  }
  void measure(std::uint32_t q, std::uint32_t bit) {
    add({OpKind::Measure, {q}, {}, bit, {}});
  }
  void reset(std::uint32_t q) { add({OpKind::Reset, {q}, {}, 0, {}}); }
  void barrier() { add({OpKind::Barrier, {}, {}, 0, {}}); }
  /// Measure every qubit into the same-numbered bit.
  void measureAll();

  // -- queries ------------------------------------------------------------
  /// Count of unitary gate operations (measure/reset/barrier excluded).
  [[nodiscard]] std::size_t gateCount() const noexcept;
  [[nodiscard]] std::size_t countKind(OpKind kind) const noexcept;
  [[nodiscard]] std::size_t twoQubitGateCount() const noexcept;
  /// Circuit depth: longest chain of operations per qubit/bit dependency.
  [[nodiscard]] std::size_t depth() const;
  /// True if any operation is conditioned or any gate follows a measurement
  /// on an overlapping qubit — i.e. the circuit needs the adaptive profile.
  [[nodiscard]] bool hasClassicalFeedback() const noexcept;
  [[nodiscard]] bool hasConditions() const noexcept;

  /// Short human-readable summary.
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const Circuit&, const Circuit&) = default;

private:
  unsigned numQubits_ = 0;
  unsigned numBits_ = 0;
  std::vector<Operation> ops_;
};

} // namespace qirkit::circuit
