/// \file reuse.hpp
/// Qubit reuse — the register-allocation analogy of the paper's §IV.A
/// taken one step further: just as a register allocator reuses a register
/// after its live range ends, a qubit whose last operation has executed
/// can be reset and reused for a program qubit whose live range starts
/// later. This reduces `required_num_qubits`, which §IV.A identifies as
/// the hard hardware constraint ("the hardware only has a fixed number of
/// qubits").
///
/// Semantics note: a reset is inserted at each reuse point. Resetting a
/// dead (discarded) qubit is distribution-preserving — tracing out a qubit
/// commutes with measuring it — but not statevector-preserving; tests
/// compare measurement statistics, not amplitudes.
#pragma once

#include "circuit/circuit.hpp"

#include <vector>

namespace qirkit::circuit {

struct ReuseResult {
  Circuit circuit;                       // rewritten over fewer qubits
  std::vector<std::uint32_t> assignment; // program qubit -> physical qubit
  unsigned qubitsBefore = 0;
  unsigned qubitsAfter = 0;
  std::size_t resetsInserted = 0;
};

/// Rewrite \p circuit so that qubits whose live ranges do not overlap
/// share a physical qubit (greedy linear-scan, first-fit). Circuits with
/// classically conditioned operations are processed conservatively: a
/// conditioned operation extends the live range of every qubit of the
/// condition's measurement source is NOT tracked — only explicit qubit
/// operands count — which is sound because conditions read classical bits,
/// not qubits.
[[nodiscard]] ReuseResult reuseQubits(const Circuit& circuit);

} // namespace qirkit::circuit
