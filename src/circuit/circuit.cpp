#include "circuit/circuit.hpp"

#include "support/source_location.hpp"

#include <algorithm>
#include <sstream>

namespace qirkit::circuit {

const char* opKindName(OpKind kind) noexcept {
  switch (kind) {
  case OpKind::H: return "h";
  case OpKind::X: return "x";
  case OpKind::Y: return "y";
  case OpKind::Z: return "z";
  case OpKind::S: return "s";
  case OpKind::Sdg: return "sdg";
  case OpKind::T: return "t";
  case OpKind::Tdg: return "tdg";
  case OpKind::RX: return "rx";
  case OpKind::RY: return "ry";
  case OpKind::RZ: return "rz";
  case OpKind::U3: return "u3";
  case OpKind::CX: return "cx";
  case OpKind::CZ: return "cz";
  case OpKind::Swap: return "swap";
  case OpKind::CCX: return "ccx";
  case OpKind::Measure: return "measure";
  case OpKind::Reset: return "reset";
  case OpKind::Barrier: return "barrier";
  }
  return "<bad op>";
}

unsigned opKindArity(OpKind kind) noexcept {
  switch (kind) {
  case OpKind::CX:
  case OpKind::CZ:
  case OpKind::Swap:
    return 2;
  case OpKind::CCX:
    return 3;
  case OpKind::Barrier:
    return 0;
  default:
    return 1;
  }
}

unsigned opKindParams(OpKind kind) noexcept {
  switch (kind) {
  case OpKind::RX:
  case OpKind::RY:
  case OpKind::RZ:
    return 1;
  case OpKind::U3:
    return 3;
  default:
    return 0;
  }
}

bool isUnitary(OpKind kind) noexcept {
  return kind != OpKind::Measure && kind != OpKind::Reset && kind != OpKind::Barrier;
}

bool Operation::touches(std::uint32_t qubit) const noexcept {
  if (kind == OpKind::Barrier && qubits.empty()) {
    return true;
  }
  return std::find(qubits.begin(), qubits.end(), qubit) != qubits.end();
}

void Circuit::setNumQubits(unsigned n) {
  for (const Operation& op : ops_) {
    for (const std::uint32_t q : op.qubits) {
      if (q >= n) {
        throw SemanticError("cannot shrink circuit below used qubit index " +
                            std::to_string(q));
      }
    }
  }
  numQubits_ = n;
}

void Circuit::add(Operation op) {
  const unsigned arity = opKindArity(op.kind);
  if (arity != 0 && op.qubits.size() != arity) {
    throw SemanticError(std::string("operation ") + opKindName(op.kind) +
                        " expects " + std::to_string(arity) + " qubits, got " +
                        std::to_string(op.qubits.size()));
  }
  if (op.params.size() != opKindParams(op.kind)) {
    throw SemanticError(std::string("operation ") + opKindName(op.kind) +
                        " expects " + std::to_string(opKindParams(op.kind)) +
                        " parameters");
  }
  for (std::size_t i = 0; i < op.qubits.size(); ++i) {
    if (op.qubits[i] >= numQubits_) {
      throw SemanticError("qubit index " + std::to_string(op.qubits[i]) +
                          " out of range (circuit has " + std::to_string(numQubits_) +
                          " qubits)");
    }
    for (std::size_t j = i + 1; j < op.qubits.size(); ++j) {
      if (op.qubits[i] == op.qubits[j]) {
        throw SemanticError(std::string("duplicate qubit operand in ") +
                            opKindName(op.kind));
      }
    }
  }
  if (op.kind == OpKind::Measure && op.bit >= numBits_) {
    throw SemanticError("classical bit index " + std::to_string(op.bit) +
                        " out of range");
  }
  if (op.condition) {
    if (op.condition->firstBit + op.condition->numBits > numBits_) {
      throw SemanticError("condition bit range out of range");
    }
  }
  ops_.push_back(std::move(op));
}

void Circuit::measureAll() {
  if (numBits_ < numQubits_) {
    throw SemanticError("measureAll requires at least as many bits as qubits");
  }
  for (unsigned q = 0; q < numQubits_; ++q) {
    measure(q, q);
  }
}

std::size_t Circuit::gateCount() const noexcept {
  std::size_t count = 0;
  for (const Operation& op : ops_) {
    if (isUnitary(op.kind)) {
      ++count;
    }
  }
  return count;
}

std::size_t Circuit::countKind(OpKind kind) const noexcept {
  std::size_t count = 0;
  for (const Operation& op : ops_) {
    if (op.kind == kind) {
      ++count;
    }
  }
  return count;
}

std::size_t Circuit::twoQubitGateCount() const noexcept {
  std::size_t count = 0;
  for (const Operation& op : ops_) {
    if (isUnitary(op.kind) && op.qubits.size() >= 2) {
      ++count;
    }
  }
  return count;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> qubitFrontier(numQubits_, 0);
  std::vector<std::size_t> bitFrontier(numBits_, 0);
  std::size_t depth = 0;
  for (const Operation& op : ops_) {
    if (op.kind == OpKind::Barrier) {
      // A barrier synchronizes its qubits (all, when unqualified).
      std::size_t level = 0;
      if (op.qubits.empty()) {
        for (const std::size_t f : qubitFrontier) {
          level = std::max(level, f);
        }
        std::fill(qubitFrontier.begin(), qubitFrontier.end(), level);
      } else {
        for (const std::uint32_t q : op.qubits) {
          level = std::max(level, qubitFrontier[q]);
        }
        for (const std::uint32_t q : op.qubits) {
          qubitFrontier[q] = level;
        }
      }
      continue;
    }
    std::size_t level = 0;
    for (const std::uint32_t q : op.qubits) {
      level = std::max(level, qubitFrontier[q]);
    }
    if (op.kind == OpKind::Measure) {
      level = std::max(level, bitFrontier[op.bit]);
    }
    if (op.condition) {
      for (std::uint32_t b = op.condition->firstBit;
           b < op.condition->firstBit + op.condition->numBits; ++b) {
        level = std::max(level, bitFrontier[b]);
      }
    }
    ++level;
    for (const std::uint32_t q : op.qubits) {
      qubitFrontier[q] = level;
    }
    if (op.kind == OpKind::Measure) {
      bitFrontier[op.bit] = level;
    }
    depth = std::max(depth, level);
  }
  return depth;
}

bool Circuit::hasConditions() const noexcept {
  for (const Operation& op : ops_) {
    if (op.condition) {
      return true;
    }
  }
  return false;
}

bool Circuit::hasClassicalFeedback() const noexcept {
  if (hasConditions()) {
    return true;
  }
  // A unitary (or reset) after a measurement on the same qubit is
  // mid-circuit measurement, which the base profile cannot express.
  std::vector<bool> measured(numQubits_, false);
  for (const Operation& op : ops_) {
    if (op.kind == OpKind::Measure) {
      measured[op.qubits[0]] = true;
    } else if (op.kind != OpKind::Barrier) {
      for (const std::uint32_t q : op.qubits) {
        if (measured[q]) {
          return true;
        }
      }
    }
  }
  return false;
}

std::string Circuit::summary() const {
  std::ostringstream out;
  out << "circuit(" << numQubits_ << "q, " << numBits_ << "c): " << ops_.size()
      << " ops, " << gateCount() << " gates (" << twoQubitGateCount()
      << " two-qubit), depth " << depth();
  return out.str();
}

} // namespace qirkit::circuit
