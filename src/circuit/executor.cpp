#include "circuit/executor.hpp"

#include "sim/stabilizer.hpp"
#include "support/source_location.hpp"

namespace qirkit::circuit {

namespace {

bool conditionHolds(const Condition& cond, const std::vector<bool>& bits) {
  std::uint64_t value = 0;
  for (std::uint32_t i = 0; i < cond.numBits; ++i) {
    if (bits[cond.firstBit + i]) {
      value |= std::uint64_t{1} << i;
    }
  }
  return value == cond.value;
}

} // namespace

ExecutionResult execute(const Circuit& circuit, std::uint64_t seed,
                        qirkit::ThreadPool* pool) {
  SplitMix64 rng(seed);
  ExecutionResult result{std::vector<bool>(circuit.numBits(), false),
                         sim::StateVector(circuit.numQubits(), pool)};
  sim::StateVector& state = result.state;
  for (const Operation& op : circuit.ops()) {
    if (op.condition && !conditionHolds(*op.condition, result.bits)) {
      continue;
    }
    switch (op.kind) {
    case OpKind::H: state.apply1(sim::gateH(), op.qubits[0]); break;
    case OpKind::X: state.apply1(sim::gateX(), op.qubits[0]); break;
    case OpKind::Y: state.apply1(sim::gateY(), op.qubits[0]); break;
    case OpKind::Z: state.apply1(sim::gateZ(), op.qubits[0]); break;
    case OpKind::S: state.apply1(sim::gateS(), op.qubits[0]); break;
    case OpKind::Sdg: state.apply1(sim::gateSdg(), op.qubits[0]); break;
    case OpKind::T: state.apply1(sim::gateT(), op.qubits[0]); break;
    case OpKind::Tdg: state.apply1(sim::gateTdg(), op.qubits[0]); break;
    case OpKind::RX: state.apply1(sim::gateRX(op.params[0]), op.qubits[0]); break;
    case OpKind::RY: state.apply1(sim::gateRY(op.params[0]), op.qubits[0]); break;
    case OpKind::RZ: state.apply1(sim::gateRZ(op.params[0]), op.qubits[0]); break;
    case OpKind::U3:
      state.apply1(sim::gateU3(op.params[0], op.params[1], op.params[2]),
                   op.qubits[0]);
      break;
    case OpKind::CX:
      state.applyControlled1(sim::gateX(), op.qubits[0], op.qubits[1]);
      break;
    case OpKind::CZ:
      state.applyControlled1(sim::gateZ(), op.qubits[0], op.qubits[1]);
      break;
    case OpKind::Swap: state.applySwap(op.qubits[0], op.qubits[1]); break;
    case OpKind::CCX:
      state.applyCCX(op.qubits[0], op.qubits[1], op.qubits[2]);
      break;
    case OpKind::Measure:
      result.bits[op.bit] = state.measure(op.qubits[0], rng);
      break;
    case OpKind::Reset: state.resetQubit(op.qubits[0], rng); break;
    case OpKind::Barrier: break;
    }
  }
  return result;
}

std::map<std::string, std::uint64_t> sampleCounts(const Circuit& circuit,
                                                  std::uint64_t shots,
                                                  std::uint64_t seed) {
  std::map<std::string, std::uint64_t> counts;
  for (std::uint64_t s = 0; s < shots; ++s) {
    const ExecutionResult result = execute(circuit, seed + s);
    ++counts[bitsToString(result.bits)];
  }
  return counts;
}

bool isCliffordCircuit(const Circuit& circuit) {
  for (const Operation& op : circuit.ops()) {
    switch (op.kind) {
    case OpKind::H:
    case OpKind::S:
    case OpKind::Sdg:
    case OpKind::X:
    case OpKind::Y:
    case OpKind::Z:
    case OpKind::CX:
    case OpKind::CZ:
    case OpKind::Swap:
    case OpKind::Measure:
    case OpKind::Reset:
    case OpKind::Barrier:
      continue;
    default:
      return false;
    }
  }
  return true;
}

std::vector<bool> executeClifford(const Circuit& circuit, std::uint64_t seed) {
  SplitMix64 rng(seed);
  sim::StabilizerSimulator state(std::max(1U, circuit.numQubits()));
  std::vector<bool> bits(circuit.numBits(), false);
  for (const Operation& op : circuit.ops()) {
    if (op.condition && !conditionHolds(*op.condition, bits)) {
      continue;
    }
    switch (op.kind) {
    case OpKind::H: state.h(op.qubits[0]); break;
    case OpKind::S: state.s(op.qubits[0]); break;
    case OpKind::Sdg: state.sdg(op.qubits[0]); break;
    case OpKind::X: state.x(op.qubits[0]); break;
    case OpKind::Y: state.y(op.qubits[0]); break;
    case OpKind::Z: state.z(op.qubits[0]); break;
    case OpKind::CX: state.cx(op.qubits[0], op.qubits[1]); break;
    case OpKind::CZ: state.cz(op.qubits[0], op.qubits[1]); break;
    case OpKind::Swap: state.swap(op.qubits[0], op.qubits[1]); break;
    case OpKind::Measure: bits[op.bit] = state.measure(op.qubits[0], rng); break;
    case OpKind::Reset: state.reset(op.qubits[0], rng); break;
    case OpKind::Barrier: break;
    default:
      throw SemanticError(std::string("non-Clifford operation '") +
                          opKindName(op.kind) +
                          "' cannot run on the stabilizer simulator");
    }
  }
  return bits;
}

std::string bitsToString(const std::vector<bool>& bits) {
  std::string out(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) {
      out[bits.size() - 1 - i] = '1';
    }
  }
  return out;
}

} // namespace qirkit::circuit
