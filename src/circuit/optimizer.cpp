#include "circuit/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace qirkit::circuit {
namespace {

/// Inverse-pair table for parameterless gates. Self-inverse unless noted.
bool areInverse(const Operation& a, const Operation& b) {
  const auto self = [](OpKind k) {
    return k == OpKind::H || k == OpKind::X || k == OpKind::Y || k == OpKind::Z ||
           k == OpKind::CX || k == OpKind::CZ || k == OpKind::Swap ||
           k == OpKind::CCX;
  };
  if (a.kind == b.kind && self(a.kind)) {
    // Orientation matters for CX and the controls of CCX.
    if (a.kind == OpKind::CZ || a.kind == OpKind::Swap) {
      return (a.qubits == b.qubits) ||
             (a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0]);
    }
    if (a.kind == OpKind::CCX) {
      return a.qubits[2] == b.qubits[2] &&
             ((a.qubits[0] == b.qubits[0] && a.qubits[1] == b.qubits[1]) ||
              (a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0]));
    }
    return a.qubits == b.qubits;
  }
  const auto pair = [&](OpKind x, OpKind y) {
    return (a.kind == x && b.kind == y) || (a.kind == y && b.kind == x);
  };
  if (a.qubits != b.qubits) {
    return false;
  }
  return pair(OpKind::S, OpKind::Sdg) || pair(OpKind::T, OpKind::Tdg);
}

/// Per-qubit stack of indices of still-alive preceding operations; used to
/// find the adjacent-on-these-qubits predecessor of each operation.
class AdjacencyTracker {
public:
  explicit AdjacencyTracker(unsigned numQubits) : last_(numQubits, -1) {}

  /// The index of the operation immediately preceding on *all* of
  /// \p qubits, or -1 if they disagree or there is none.
  [[nodiscard]] int adjacentPredecessor(const std::vector<std::uint32_t>& qubits) const {
    if (qubits.empty()) {
      return -1;
    }
    const int candidate = last_[qubits[0]];
    for (const std::uint32_t q : qubits) {
      if (last_[q] != candidate) {
        return -1;
      }
    }
    return candidate;
  }

  void place(int index, const std::vector<std::uint32_t>& qubits) {
    for (const std::uint32_t q : qubits) {
      last_[q] = index;
    }
  }

  void placeOnAll(int index) { std::fill(last_.begin(), last_.end(), index); }

  /// Forget \p index on \p qubits, restoring \p restore (used when the
  /// predecessor is cancelled; the ops before it are unknown, so block).
  void blockQubits(const std::vector<std::uint32_t>& qubits) {
    for (const std::uint32_t q : qubits) {
      last_[q] = -2; // unknown: prevents further pairing across the hole
    }
  }

private:
  std::vector<int> last_;
};

bool isFence(const Operation& op) {
  return !isUnitary(op.kind) || op.condition.has_value();
}

void compact(Circuit& circuit, const std::vector<bool>& removed) {
  Circuit next(circuit.numQubits(), circuit.numBits());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (!removed[i]) {
      next.add(circuit.op(i));
    }
  }
  circuit = std::move(next);
}

} // namespace

std::size_t cancelInversePairs(Circuit& circuit) {
  const std::size_t n = circuit.size();
  std::vector<bool> removed(n, false);
  AdjacencyTracker tracker(circuit.numQubits());
  for (std::size_t i = 0; i < n; ++i) {
    const Operation& op = circuit.op(i);
    if (isFence(op)) {
      if (op.kind == OpKind::Barrier && op.qubits.empty()) {
        tracker.placeOnAll(static_cast<int>(i));
      } else {
        tracker.place(static_cast<int>(i), op.qubits);
      }
      continue;
    }
    const int prev = tracker.adjacentPredecessor(op.qubits);
    if (prev >= 0 && !removed[static_cast<std::size_t>(prev)] &&
        !isFence(circuit.op(static_cast<std::size_t>(prev))) &&
        areInverse(circuit.op(static_cast<std::size_t>(prev)), op)) {
      removed[static_cast<std::size_t>(prev)] = true;
      removed[i] = true;
      // What precedes `prev` on these qubits is no longer tracked.
      tracker.blockQubits(op.qubits);
      continue;
    }
    tracker.place(static_cast<int>(i), op.qubits);
  }
  const std::size_t count =
      static_cast<std::size_t>(std::count(removed.begin(), removed.end(), true));
  if (count > 0) {
    compact(circuit, removed);
  }
  return count;
}

std::size_t mergeRotations(Circuit& circuit) {
  const std::size_t n = circuit.size();
  std::vector<bool> removed(n, false);
  std::vector<Operation> ops(circuit.ops().begin(), circuit.ops().end());
  AdjacencyTracker tracker(circuit.numQubits());
  std::size_t mergedCount = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Operation& op = ops[i];
    const bool rotation = op.kind == OpKind::RX || op.kind == OpKind::RY ||
                          op.kind == OpKind::RZ;
    if (isFence(op) || !rotation) {
      if (op.kind == OpKind::Barrier && op.qubits.empty()) {
        tracker.placeOnAll(static_cast<int>(i));
      } else {
        tracker.place(static_cast<int>(i), op.qubits);
      }
      continue;
    }
    const int prev = tracker.adjacentPredecessor(op.qubits);
    if (prev >= 0 && !removed[static_cast<std::size_t>(prev)] &&
        ops[static_cast<std::size_t>(prev)].kind == op.kind &&
        !ops[static_cast<std::size_t>(prev)].condition) {
      // Accumulate into the earlier rotation and drop this one; the earlier
      // one stays adjacent for further merging.
      ops[static_cast<std::size_t>(prev)].params[0] += op.params[0];
      removed[i] = true;
      ++mergedCount;
      continue;
    }
    tracker.place(static_cast<int>(i), op.qubits);
  }
  if (mergedCount > 0) {
    Circuit next(circuit.numQubits(), circuit.numBits());
    for (std::size_t i = 0; i < n; ++i) {
      if (!removed[i]) {
        next.add(std::move(ops[i]));
      }
    }
    circuit = std::move(next);
  }
  return mergedCount;
}

std::size_t removeIdentityRotations(Circuit& circuit, double eps) {
  const std::size_t n = circuit.size();
  std::vector<bool> removed(n, false);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Operation& op = circuit.op(i);
    const bool rotation = op.kind == OpKind::RX || op.kind == OpKind::RY ||
                          op.kind == OpKind::RZ;
    if (!rotation || op.condition) {
      continue;
    }
    const double twoPi = 2 * std::numbers::pi;
    double angle = std::fmod(op.params[0], twoPi);
    if (angle < 0) {
      angle += twoPi;
    }
    if (angle < eps || twoPi - angle < eps) {
      removed[i] = true;
      ++count;
    }
  }
  if (count > 0) {
    compact(circuit, removed);
  }
  return count;
}

OptimizeStats optimizeCircuit(Circuit& circuit) {
  OptimizeStats stats;
  while (true) {
    ++stats.sweeps;
    const std::size_t cancelled = cancelInversePairs(circuit);
    const std::size_t merged = mergeRotations(circuit);
    const std::size_t identities = removeIdentityRotations(circuit);
    stats.cancelled += cancelled;
    stats.merged += merged;
    stats.identitiesRemoved += identities;
    if (cancelled + merged + identities == 0 || stats.sweeps >= 32) {
      return stats;
    }
  }
}

std::size_t deferMeasurements(Circuit& circuit) {
  // Repeatedly bubble each measurement past a following operation when
  // they touch disjoint qubits and the follower does not read the
  // measured bit. O(n^2) worst case; circuits are short at this stage.
  const auto readsBit = [](const Operation& op, std::uint32_t bit) {
    return op.condition && bit >= op.condition->firstBit &&
           bit < op.condition->firstBit + op.condition->numBits;
  };
  std::vector<Operation> ops(circuit.ops().begin(), circuit.ops().end());
  std::size_t moved = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
      const Operation& current = ops[i];
      const Operation& next = ops[i + 1];
      if (current.kind != OpKind::Measure || next.kind == OpKind::Measure) {
        continue;
      }
      if (next.kind == OpKind::Barrier) {
        continue; // barriers fence everything
      }
      if (next.touches(current.qubits[0]) || readsBit(next, current.bit)) {
        continue;
      }
      std::swap(ops[i], ops[i + 1]);
      ++moved;
      changed = true;
    }
  }
  if (moved > 0) {
    Circuit out(circuit.numQubits(), circuit.numBits());
    for (Operation& op : ops) {
      out.add(std::move(op));
    }
    circuit = std::move(out);
  }
  return moved;
}

Circuit decomposeToCXBasis(const Circuit& circuit) {
  Circuit out(circuit.numQubits(), circuit.numBits());
  const auto emit = [&out](Operation op, const std::optional<Condition>& cond) {
    op.condition = cond;
    out.add(std::move(op));
  };
  for (const Operation& op : circuit.ops()) {
    switch (op.kind) {
    case OpKind::Swap: {
      const std::uint32_t a = op.qubits[0];
      const std::uint32_t b = op.qubits[1];
      emit({OpKind::CX, {a, b}, {}, 0, {}}, op.condition);
      emit({OpKind::CX, {b, a}, {}, 0, {}}, op.condition);
      emit({OpKind::CX, {a, b}, {}, 0, {}}, op.condition);
      break;
    }
    case OpKind::CCX: {
      // Standard 6-CX, T-depth-3 Toffoli decomposition.
      const std::uint32_t c1 = op.qubits[0];
      const std::uint32_t c2 = op.qubits[1];
      const std::uint32_t t = op.qubits[2];
      const auto& cond = op.condition;
      emit({OpKind::H, {t}, {}, 0, {}}, cond);
      emit({OpKind::CX, {c2, t}, {}, 0, {}}, cond);
      emit({OpKind::Tdg, {t}, {}, 0, {}}, cond);
      emit({OpKind::CX, {c1, t}, {}, 0, {}}, cond);
      emit({OpKind::T, {t}, {}, 0, {}}, cond);
      emit({OpKind::CX, {c2, t}, {}, 0, {}}, cond);
      emit({OpKind::Tdg, {t}, {}, 0, {}}, cond);
      emit({OpKind::CX, {c1, t}, {}, 0, {}}, cond);
      emit({OpKind::T, {c2}, {}, 0, {}}, cond);
      emit({OpKind::T, {t}, {}, 0, {}}, cond);
      emit({OpKind::H, {t}, {}, 0, {}}, cond);
      emit({OpKind::CX, {c1, c2}, {}, 0, {}}, cond);
      emit({OpKind::T, {c1}, {}, 0, {}}, cond);
      emit({OpKind::Tdg, {c2}, {}, 0, {}}, cond);
      emit({OpKind::CX, {c1, c2}, {}, 0, {}}, cond);
      break;
    }
    default:
      out.add(op);
      break;
    }
  }
  return out;
}

} // namespace qirkit::circuit
