/// \file mapping.hpp
/// Qubit mapping — the paper's §IV.A: "the compiler must at some point
/// assign the program's qubits to the hardware's qubits — a process very
/// similar to register allocation in classical compilers."
///
/// A Target describes the hardware register file (qubit count + coupling
/// map); mapCircuit() assigns program qubits to hardware qubits, inserts
/// SWAPs to satisfy the coupling constraint, and rejects programs that
/// exceed the hardware qubit count.
#pragma once

#include "circuit/circuit.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace qirkit::circuit {

/// A hardware target: a fixed number of qubits with an undirected coupling
/// graph. (CX direction is ignored; direction fixing is an H-conjugation
/// peephole left to the basis lowering.)
struct Target {
  std::string name;
  unsigned numQubits = 0;
  std::vector<std::pair<unsigned, unsigned>> coupling;

  [[nodiscard]] bool connected(unsigned a, unsigned b) const noexcept;
  /// All-pairs shortest-path distances over the coupling graph (BFS).
  /// Unreachable pairs get a distance > numQubits.
  [[nodiscard]] std::vector<std::vector<unsigned>> distances() const;

  static Target line(unsigned n);
  static Target ring(unsigned n);
  static Target grid(unsigned rows, unsigned cols);
  static Target fullyConnected(unsigned n);
};

/// Result of mapping a circuit onto a target.
struct MappingResult {
  Circuit mapped;                       // hardware-qubit circuit
  std::vector<unsigned> initialLayout;  // program qubit -> hardware qubit
  std::vector<unsigned> finalLayout;    // program qubit -> hardware qubit
  std::size_t swapsInserted = 0;
};

/// Map \p circuit onto \p target with a greedy shortest-path router.
/// Multi-qubit gates beyond 2 qubits must be decomposed first
/// (decomposeToCXBasis). Throws SemanticError if the circuit needs more
/// qubits than the target has — the §IV.A rejection obligation.
[[nodiscard]] MappingResult mapCircuit(const Circuit& circuit, const Target& target);

/// Check that every 2-qubit operation in \p circuit respects \p target's
/// coupling map (used by tests and the validator).
[[nodiscard]] bool respectsCoupling(const Circuit& circuit, const Target& target);

} // namespace qirkit::circuit
