#include "service/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

namespace qirkit::service::json {

namespace {

[[noreturn]] void malformed(std::size_t at, const std::string& what) {
  throw qirkit::Error(ErrorCode::Parse,
                      "malformed JSON at byte " + std::to_string(at) + ": " + what);
}

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value(0);
    skipWs();
    if (pos_ != text_.size()) {
      malformed(pos_, "trailing content after document");
    }
    return v;
  }

private:
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      malformed(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      malformed(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value value(std::size_t depth) {
    if (depth > kMaxDepth) {
      malformed(pos_, "nesting deeper than " + std::to_string(kMaxDepth));
    }
    skipWs();
    Value v;
    const char c = peek();
    if (c == '{') {
      v.kind = Value::Kind::Object;
      ++pos_;
      skipWs();
      if (!consume('}')) {
        do {
          skipWs();
          std::string key = parseString();
          skipWs();
          expect(':');
          v.object[std::move(key)] = value(depth + 1);
          skipWs();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      v.kind = Value::Kind::Array;
      ++pos_;
      skipWs();
      if (!consume(']')) {
        do {
          v.array.push_back(value(depth + 1));
          skipWs();
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v.kind = Value::Kind::String;
      v.string = parseString();
    } else if (c == 't') {
      if (!consumeWord("true")) {
        malformed(pos_, "bad literal");
      }
      v.kind = Value::Kind::Bool;
      v.boolean = true;
    } else if (c == 'f') {
      if (!consumeWord("false")) {
        malformed(pos_, "bad literal");
      }
      v.kind = Value::Kind::Bool;
    } else if (c == 'n') {
      if (!consumeWord("null")) {
        malformed(pos_, "bad literal");
      }
    } else if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
      v.kind = Value::Kind::Number;
      const std::size_t start = pos_;
      v.number = parseNumber();
      // Keep the literal spelling: a full 64-bit integer (a server-chosen
      // seed) is not exactly representable as a double, and asU64 needs
      // the exact value back.
      v.string.assign(text_.substr(start, pos_ - start));
    } else {
      malformed(pos_, "unexpected character");
    }
    return v;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        malformed(pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        malformed(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        malformed(pos_, "unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) {
          malformed(pos_, "truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text_[pos_++];
          code <<= 4U;
          if (h >= '0' && h <= '9') {
            code += static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code += static_cast<unsigned>(h - 'a') + 10;
          } else if (h >= 'A' && h <= 'F') {
            code += static_cast<unsigned>(h - 'A') + 10;
          } else {
            malformed(pos_ - 1, "bad hex digit in \\u escape");
          }
        }
        // UTF-8 encode the code point (surrogate pairs are passed through
        // as two 3-byte sequences — protocol strings are program text and
        // tenant names, not arbitrary unicode prose).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0U | (code >> 6U));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        } else {
          out += static_cast<char>(0xE0U | (code >> 12U));
          out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        }
        break;
      }
      default:
        malformed(pos_ - 1, "unknown escape");
      }
    }
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty()) {
      malformed(start, "bad number '" + token + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) {
    return nullptr;
  }
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

std::uint64_t Value::asU64(std::string_view key, ErrorCode code) const {
  // Plain decimal literals read back exactly from their spelling, which
  // covers the full 64-bit range (2^53..2^64 would be lossy as doubles).
  if (kind == Kind::Number && !string.empty() &&
      std::all_of(string.begin(), string.end(),
                  [](char c) { return c >= '0' && c <= '9'; })) {
    try {
      return std::stoull(string);
    } catch (const std::exception&) {
      throw qirkit::Error(code, "field '" + std::string(key) +
                                    "' is out of 64-bit range");
    }
  }
  if (kind != Kind::Number || number < 0 || std::floor(number) != number ||
      number > 9.007199254740992e15) { // 2^53: exact integer range
    throw qirkit::Error(code, "field '" + std::string(key) +
                                  "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

Value parse(std::string_view text) {
  return Parser(text).document();
}

} // namespace qirkit::service::json
