/// \file flight_recorder.hpp
/// The daemon's flight recorder: a fixed-size ring buffer of recent
/// request records — tenant, ids, per-stage timings, outcome, error
/// code, and the cancellation cause (cancel verb vs watchdog vs queue
/// TTL vs drain) — queryable via the `events` verb. Where the metrics
/// endpoint answers "how is the service doing", the recorder answers
/// "what happened to request X" after the fact, without any tracing
/// having been armed in advance.
///
/// Recording is unconditional (like the server's exact counters): one
/// short mutex section and a handful of string copies per finished
/// request, invisible next to socket I/O. Memory is bounded by the
/// capacity times a per-record cap that the caller respects by only
/// attaching the full stage trace to slow or errored requests —
/// the automatic capture that makes the interesting 1% diagnosable
/// while the healthy 99% stay one flat record each.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qirkit::service {

/// One archived request.
struct FlightRecord {
  std::uint64_t seq = 0; ///< monotonic record number, stamped by record()
  std::uint64_t jobId = 0;
  std::string tenant;
  std::string requestId;
  std::string programId;
  std::uint64_t shots = 0;
  std::uint64_t queueWaitNs = 0;
  std::uint64_t execNs = 0;
  std::uint64_t totalNs = 0;
  std::string outcome;    ///< "ok" | "error" | "rejected"
  std::string errorCode;  ///< kebab-case ErrorCode when outcome != "ok"
  std::string cause;      ///< "cancel", "watchdog", "queue-ttl", "drain",
                          ///< an admission cause, or empty
  std::string stagesJson; ///< per-stage JSON array; kept only when
                          ///< slow or errored (see FlightRecorder)
  bool slow = false;      ///< stamped by record() from the threshold
};

class FlightRecorder {
public:
  /// \p capacity records are retained (oldest evicted first);
  /// \p slowThresholdNs marks a record slow when its total latency
  /// (admission to delivery) reaches it. 0 disables the slow mark.
  FlightRecorder(std::size_t capacity, std::uint64_t slowThresholdNs);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Archive one finished request. Stamps seq and slow; drops the stage
  /// trace unless the record is slow or not "ok" — the bound that keeps
  /// a healthy high-throughput daemon's recorder memory flat.
  void record(FlightRecord rec);

  /// Records in arrival order (oldest first), optionally filtered by
  /// tenant and truncated to the *newest* \p limit matches (0 = all).
  [[nodiscard]] std::vector<FlightRecord> query(std::string_view tenant = {},
                                                std::size_t limit = 0) const;

  /// The query result rendered as the events verb's JSON array.
  [[nodiscard]] std::string eventsJson(std::string_view tenant = {},
                                       std::size_t limit = 0) const;

  /// Total records ever archived (>= retained count once wrapped).
  [[nodiscard]] std::uint64_t recorded() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t slowThresholdNs() const noexcept {
    return slowThresholdNs_;
  }

private:
  std::size_t capacity_;
  std::uint64_t slowThresholdNs_;
  mutable std::mutex mutex_;
  std::vector<FlightRecord> ring_; // grows to capacity_, then wraps
  std::size_t next_ = 0;           // ring insertion point once full
  std::uint64_t seq_ = 0;
};

} // namespace qirkit::service
