/// \file prometheus.hpp
/// Prometheus text exposition (format version 0.0.4) of the telemetry
/// registry, for the metrics verb's `format=prometheus` mode. Standard
/// scrapers cannot speak the daemon's line-delimited JSON, so the server
/// returns this text escaped inside the JSON response's "body" field and
/// `qirkit submit metrics --format=prometheus` unwraps it to stdout —
/// from where a node_exporter-style textfile collector, or a thin HTTP
/// shim, feeds an actual Prometheus.
///
/// Mapping: dotted metric names are sanitized ('.', '-' → '_') under a
/// `qirkit_` prefix; counters and gauges become scalar series of their
/// type; latency histograms become native Prometheus histograms
/// (`_bucket{le=...}` cumulative over the power-of-two ns bounds, plus
/// `_sum`/`_count`, all in nanoseconds); labeled families emit one
/// series per live label value under their label key (tenant), plus an
/// `_evicted` counter exposing the cardinality bound's activity.
#pragma once

#include <string>
#include <string_view>

namespace qirkit::service {

/// Sanitized Prometheus identifier for a dotted metric name:
/// "serve.job.latency_ns" → "qirkit_serve_job_latency_ns".
[[nodiscard]] std::string prometheusName(std::string_view name);

/// Render every registered metric (scalars, histograms, labeled
/// families) as one exposition document. Values reflect the live
/// registry at call time.
[[nodiscard]] std::string prometheusText();

} // namespace qirkit::service
