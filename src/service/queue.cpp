#include "service/queue.hpp"

#include "support/cancel.hpp"
#include "support/rng.hpp"
#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>

namespace qirkit::service {

namespace {

telemetry::Counter g_admitted{"serve.queue.admitted"};
telemetry::Counter g_rejected{"serve.queue.rejected"};
telemetry::Counter g_rateLimited{"serve.queue.rate_limited"};
telemetry::MaxGauge g_peakDepth{"serve.queue.peak_depth"};

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

} // namespace

void AdmissionQueue::push(Job job) {
  const std::string& tenantName = job.request.tenant;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // retryAfterMs: 0 = permanent (static limit), nonzero = back off and
    // retry — surfaced on the wire as the retry_after_ms hint. The cause
    // is the stable label of the per-tenant reject-by-cause counters.
    const auto reject = [&](const std::string& why, std::uint64_t retryAfterMs,
                            const char* cause) {
      ++rejected_;
      g_rejected.add();
      throw AdmissionError(why, retryAfterMs, cause);
    };
    if (closed_) {
      reject("service is shutting down", 0, "draining");
    }
    if (job.request.shots > limits_.maxShotsPerJob) {
      reject("job requests " + std::to_string(job.request.shots) +
                 " shots; per-job limit is " +
                 std::to_string(limits_.maxShotsPerJob),
             0, "shot-ceiling");
    }
    if (depthLocked() >= limits_.capacity) {
      reject("admission queue is full (" + std::to_string(limits_.capacity) +
                 " jobs)",
             100, "queue-capacity");
    }
    Tenant& tenant = tenants_[tenantName];
    if (tenant.pending >= limits_.tenantMaxPending) {
      reject("tenant '" + tenantName + "' already has " +
                 std::to_string(tenant.pending) + " pending jobs (limit " +
                 std::to_string(limits_.tenantMaxPending) + ")",
             50, "tenant-pending");
    }
    if (limits_.ratePerSec > 0) {
      // Continuous token-bucket refill: one token per admission,
      // ratePerSec tokens/s restored, capped at the burst. Refilling on
      // every attempt makes the window slide instead of stepping.
      const std::uint64_t now = qirkit::CancelToken::nowNs();
      if (!tenant.rateInit) {
        tenant.rateTokens = limits_.rateBurst;
        tenant.rateRefillNs = now;
        tenant.rateInit = true;
      } else {
        const double elapsedSec =
            static_cast<double>(now - tenant.rateRefillNs) * 1e-9;
        tenant.rateTokens = std::min(
            limits_.rateBurst,
            tenant.rateTokens + elapsedSec * limits_.ratePerSec);
        tenant.rateRefillNs = now;
      }
      if (tenant.rateTokens < 1.0) {
        const double deficitSec =
            (1.0 - tenant.rateTokens) / limits_.ratePerSec;
        const auto retryMs = static_cast<std::uint64_t>(
            std::ceil(deficitSec * 1e3));
        ++rateLimited_;
        g_rateLimited.add();
        reject("tenant '" + tenantName + "' exceeded its admission rate (" +
                   std::to_string(limits_.ratePerSec) + "/s, burst " +
                   std::to_string(limits_.rateBurst) + ")",
               std::max<std::uint64_t>(retryMs, 1), "rate-limit");
      }
      tenant.rateTokens -= 1.0;
    }
    job.id = nextJobId_++;
    if (job.request.seed.has_value()) {
      job.seed = *job.request.seed;
    } else {
      if (!tenant.seeded) {
        tenant.seedState = fnv1a(tenantName);
        tenant.seeded = true;
      }
      SplitMix64 stream(tenant.seedState);
      job.seed = stream();
      tenant.seedState = job.seed;
    }
    job.enqueuedNs = telemetry::nowNs();
    // Priority ordering within the tenant: higher priority first, FIFO
    // among equals.
    auto at = tenant.queued.end();
    while (at != tenant.queued.begin() &&
           std::prev(at)->request.priority < job.request.priority) {
      --at;
    }
    tenant.queued.insert(at, std::move(job));
    ++tenant.pending;
    ++tenant.admitted;
    ++admitted_;
    g_admitted.add();
    g_peakDepth.updateMax(depthLocked());
  }
  ready_.notify_one();
}

std::optional<Job> AdmissionQueue::pop() {
  std::unique_lock lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || depthLocked() != 0; });
  if (depthLocked() == 0) {
    return std::nullopt; // closed and drained
  }
  // Fair pick: the first non-empty tenant strictly after the cursor in
  // map order, wrapping around.
  auto it = tenants_.upper_bound(cursor_);
  for (std::size_t scanned = 0; scanned <= tenants_.size(); ++scanned, ++it) {
    if (it == tenants_.end()) {
      it = tenants_.begin();
    }
    if (!it->second.queued.empty()) {
      break;
    }
  }
  cursor_ = it->first;
  Job job = std::move(it->second.queued.front());
  it->second.queued.pop_front();
  return job;
}

void AdmissionQueue::onJobFinished(const std::string& tenant) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.pending > 0) {
    --it->second.pending;
  }
  ++finished_;
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t AdmissionQueue::depthLocked() const {
  std::size_t n = 0;
  for (const auto& [name, tenant] : tenants_) {
    n += tenant.queued.size();
  }
  return n;
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return depthLocked();
}

QueueStats AdmissionQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  QueueStats stats;
  stats.depth = depthLocked();
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.rateLimited = rateLimited_;
  stats.finished = finished_;
  for (const auto& [name, tenant] : tenants_) {
    stats.tenants.push_back({name, tenant.pending, tenant.admitted});
  }
  return stats;
}

} // namespace qirkit::service
