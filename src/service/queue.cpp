#include "service/queue.hpp"

#include "support/rng.hpp"
#include "support/telemetry/telemetry.hpp"

#include <algorithm>

namespace qirkit::service {

namespace {

telemetry::Counter g_admitted{"serve.queue.admitted"};
telemetry::Counter g_rejected{"serve.queue.rejected"};
telemetry::MaxGauge g_peakDepth{"serve.queue.peak_depth"};

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

} // namespace

void AdmissionQueue::push(Job job) {
  const std::string& tenantName = job.request.tenant;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto reject = [&](const std::string& why) {
      ++rejected_;
      g_rejected.add();
      throw qirkit::Error(ErrorCode::ResourceLimit, why);
    };
    if (closed_) {
      reject("service is shutting down");
    }
    if (job.request.shots > limits_.maxShotsPerJob) {
      reject("job requests " + std::to_string(job.request.shots) +
             " shots; per-job limit is " +
             std::to_string(limits_.maxShotsPerJob));
    }
    if (depthLocked() >= limits_.capacity) {
      reject("admission queue is full (" + std::to_string(limits_.capacity) +
             " jobs)");
    }
    Tenant& tenant = tenants_[tenantName];
    if (tenant.pending >= limits_.tenantMaxPending) {
      reject("tenant '" + tenantName + "' already has " +
             std::to_string(tenant.pending) + " pending jobs (limit " +
             std::to_string(limits_.tenantMaxPending) + ")");
    }
    job.id = nextJobId_++;
    if (job.request.seed.has_value()) {
      job.seed = *job.request.seed;
    } else {
      if (!tenant.seeded) {
        tenant.seedState = fnv1a(tenantName);
        tenant.seeded = true;
      }
      SplitMix64 stream(tenant.seedState);
      job.seed = stream();
      tenant.seedState = job.seed;
    }
    job.enqueuedNs = telemetry::nowNs();
    // Priority ordering within the tenant: higher priority first, FIFO
    // among equals.
    auto at = tenant.queued.end();
    while (at != tenant.queued.begin() &&
           std::prev(at)->request.priority < job.request.priority) {
      --at;
    }
    tenant.queued.insert(at, std::move(job));
    ++tenant.pending;
    ++tenant.admitted;
    ++admitted_;
    g_admitted.add();
    g_peakDepth.updateMax(depthLocked());
  }
  ready_.notify_one();
}

std::optional<Job> AdmissionQueue::pop() {
  std::unique_lock lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || depthLocked() != 0; });
  if (depthLocked() == 0) {
    return std::nullopt; // closed and drained
  }
  // Fair pick: the first non-empty tenant strictly after the cursor in
  // map order, wrapping around.
  auto it = tenants_.upper_bound(cursor_);
  for (std::size_t scanned = 0; scanned <= tenants_.size(); ++scanned, ++it) {
    if (it == tenants_.end()) {
      it = tenants_.begin();
    }
    if (!it->second.queued.empty()) {
      break;
    }
  }
  cursor_ = it->first;
  Job job = std::move(it->second.queued.front());
  it->second.queued.pop_front();
  return job;
}

void AdmissionQueue::onJobFinished(const std::string& tenant) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.pending > 0) {
    --it->second.pending;
  }
  ++finished_;
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t AdmissionQueue::depthLocked() const {
  std::size_t n = 0;
  for (const auto& [name, tenant] : tenants_) {
    n += tenant.queued.size();
  }
  return n;
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return depthLocked();
}

QueueStats AdmissionQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  QueueStats stats;
  stats.depth = depthLocked();
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.finished = finished_;
  for (const auto& [name, tenant] : tenants_) {
    stats.tenants.push_back({name, tenant.pending, tenant.admitted});
  }
  return stats;
}

} // namespace qirkit::service
