/// \file queue.hpp
/// The service's admission queue: the single point where multi-tenancy is
/// enforced. Admission applies the quotas (global queue capacity, per-
/// tenant pending bound, per-job shot ceiling) and resolves each job's
/// seed; scheduling is round-robin across tenants with per-tenant priority
/// ordering, so one chatty tenant can delay its own jobs but never starve
/// another tenant's.
///
/// Seeds: a job that names no seed draws the next value from its tenant's
/// deterministic SplitMix64 stream (keyed on the tenant name), so a
/// tenant's unseeded jobs are reproducible across daemon restarts yet
/// decorrelated from every other tenant's.
#pragma once

#include "service/protocol.hpp"
#include "support/error.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace qirkit {
class CancelToken;
} // namespace qirkit

namespace qirkit::telemetry {
class RequestTrace;
} // namespace qirkit::telemetry

namespace qirkit::service {

/// A structured admission rejection: error[resource-limit] plus a
/// machine-readable hint for when the caller should try again.
/// retryAfterMs == 0 means "never" — the request violates a static limit
/// (shot ceiling, oversized state) and would be rejected identically on
/// every retry.
class AdmissionError : public qirkit::Error {
public:
  AdmissionError(const std::string& message, std::uint64_t retryAfterMs,
                 std::string cause = {})
      : Error(ErrorCode::ResourceLimit, message), retryAfterMs_(retryAfterMs),
        cause_(std::move(cause)) {}

  [[nodiscard]] std::uint64_t retryAfterMs() const noexcept {
    return retryAfterMs_;
  }
  /// Stable machine-readable reject cause ("queue-capacity",
  /// "tenant-pending", "shot-ceiling", "rate-limit", "memory", ...) —
  /// the label of the per-tenant reject-by-cause SLO counters.
  [[nodiscard]] const std::string& cause() const noexcept { return cause_; }

private:
  std::uint64_t retryAfterMs_ = 0;
  std::string cause_;
};

/// One admitted unit of work. The runner fulfills `deliver` with the final
/// response line (result or structured error); the connection thread holds
/// the matching future.
struct Job {
  std::uint64_t id = 0;
  SubmitRequest request;
  std::uint64_t seed = 0;       // resolved at admission
  std::string programId;        // content id of the resolved program
  /// The resolved program registry entry, held alive for the job's whole
  /// lifetime (opaque here: the registry type lives in server.hpp).
  std::shared_ptr<void> program;
  std::uint64_t enqueuedNs = 0; // for queue-wait attribution
  /// Absolute steady-clock deadline (CancelToken::nowNs units; 0 = none).
  /// Armed at admission, so queue wait counts against the budget and a
  /// job can expire while still pending (queue TTL).
  std::uint64_t deadlineNs = 0;
  /// The job's cancellation token: shared by the executing batch, the
  /// cancel verb, and the watchdog. Null for jobs that set neither a
  /// deadline nor a request id.
  std::shared_ptr<qirkit::CancelToken> cancel;
  /// The request-scoped trace context (request_trace.hpp), created at
  /// admission and carried to the executing batch via ShotOptions.
  /// Opaque here for the same layering reason as `program`.
  std::shared_ptr<telemetry::RequestTrace> trace;
  /// The server's ActiveJob record for this job (opaque: the type lives
  /// in server.hpp), so the runner can attribute a cancellation to the
  /// watchdog vs the cancel verb when it records the outcome.
  std::shared_ptr<void> active;
  std::function<void(std::string)> deliver;
};

struct QueueLimits {
  /// Total queued jobs across all tenants; admission beyond it is
  /// error[resource-limit].
  std::size_t capacity = 256;
  /// Queued + running jobs per tenant.
  std::size_t tenantMaxPending = 16;
  /// Largest shot count one job may request.
  std::uint64_t maxShotsPerJob = 1U << 20U;
  /// Per-tenant token-bucket rate limit: sustained admissions per second
  /// (0 disables) with \p rateBurst of headroom. The bucket refills
  /// continuously from the monotonic clock, so the limit acts over a
  /// sliding window rather than fixed epochs; violations reject with
  /// error[resource-limit] and a retry_after_ms hint sized to the token
  /// deficit.
  double ratePerSec = 0.0;
  double rateBurst = 8.0;
};

/// Point-in-time view for the metrics endpoint.
struct QueueStats {
  std::size_t depth = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rateLimited = 0; // subset of rejected
  std::uint64_t finished = 0;
  struct Tenant {
    std::string name;
    std::size_t pending = 0; // queued + running
    std::uint64_t admitted = 0;
  };
  std::vector<Tenant> tenants;
};

class AdmissionQueue {
public:
  explicit AdmissionQueue(QueueLimits limits) : limits_(limits) {}

  /// Admit \p job (assigning id, seed, and enqueue tick) or throw
  /// Error(ErrorCode::ResourceLimit) naming the violated quota.
  /// Thread-safe; wakes one blocked pop().
  void push(Job job);

  /// Next job in fair order; blocks while the queue is open and empty.
  /// Returns nullopt once close()d and drained.
  [[nodiscard]] std::optional<Job> pop();

  /// Release the tenant's pending slot after its job ran (or failed).
  void onJobFinished(const std::string& tenant);

  /// Stop admitting (push throws ResourceLimit) and wake every pop().
  /// Already-queued jobs still drain.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] QueueStats stats() const;
  [[nodiscard]] const QueueLimits& limits() const noexcept { return limits_; }

private:
  struct Tenant {
    std::deque<Job> queued; // priority-ordered, FIFO within a priority
    std::size_t pending = 0;
    std::uint64_t admitted = 0;
    std::uint64_t seedState = 0; // SplitMix64 state, lazily keyed on name
    bool seeded = false;
    /// Token bucket (when QueueLimits::ratePerSec > 0): current tokens
    /// and the monotonic tick of the last refill.
    double rateTokens = 0;
    std::uint64_t rateRefillNs = 0;
    bool rateInit = false;
  };

  [[nodiscard]] std::size_t depthLocked() const;

  QueueLimits limits_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<std::string, Tenant> tenants_;
  /// Round-robin cursor: the tenant scheduled *after* this name (map
  /// order) serves next, so no tenant is drained twice in a row while
  /// another waits.
  std::string cursor_;
  std::uint64_t nextJobId_ = 1;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rateLimited_ = 0;
  std::uint64_t finished_ = 0;
  bool closed_ = false;
};

} // namespace qirkit::service
