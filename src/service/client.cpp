#include "service/client.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

namespace qirkit::service {

namespace {

/// Transient connect failures worth retrying: the daemon is starting
/// (socket not bound yet), restarting (stale refusal), or its accept
/// backlog is momentarily full. Anything else (EACCES, path errors) is
/// permanent and retried never.
bool transientConnectError(int err) noexcept {
  return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
         err == ECONNRESET || err == EINTR;
}

int connectOnce(const sockaddr_un& addr, const std::string& socketPath,
                int& errOut) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw qirkit::Error(ErrorCode::Io,
                        std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
      0) {
    return fd;
  }
  errOut = errno;
  ::close(fd);
  (void)socketPath;
  return -1;
}

} // namespace

Client::Client(const std::string& socketPath, const ClientOptions& options) {
  // Once per process: MSG_NOSIGNAL guards our own sends, but SIG_IGN is
  // the belt-and-braces that keeps any other unguarded write from turning
  // a vanished peer into process death.
  static const int sigpipeIgnored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)sigpipeIgnored;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    throw qirkit::Error(ErrorCode::Usage,
                        "socket path longer than " +
                            std::to_string(sizeof(addr.sun_path) - 1) +
                            " bytes: '" + socketPath + "'");
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

  int lastErr = 0;
  fd_ = connectOnce(addr, socketPath, lastErr);
  if (fd_ < 0 && options.connectRetries > 0 &&
      transientConnectError(lastErr)) {
    // Jittered exponential backoff: delay doubles per attempt up to the
    // cap, and each sleep lands uniformly in [delay/2, delay] so a fleet
    // of clients racing a restarting daemon spreads out instead of
    // hammering it in lockstep.
    SplitMix64 rng(static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count()));
    std::uint64_t delayMs = std::max<std::uint64_t>(options.backoffBaseMs, 1);
    for (unsigned attempt = 0; attempt < options.connectRetries; ++attempt) {
      const std::uint64_t jittered = delayMs / 2 + rng.below(delayMs / 2 + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
      fd_ = connectOnce(addr, socketPath, lastErr);
      if (fd_ >= 0 || !transientConnectError(lastErr)) {
        break;
      }
      delayMs = std::min(delayMs * 2, std::max<std::uint64_t>(
                                          options.backoffCapMs, delayMs));
    }
  }
  if (fd_ < 0) {
    throw qirkit::Error(ErrorCode::Io,
                        "cannot connect to '" + socketPath +
                            "': " + std::strerror(lastErr) +
                            " (is the daemon running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Client::sendRaw(std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      throw qirkit::Error(ErrorCode::Io,
                          std::string("send: ") +
                              (n < 0 ? std::strerror(errno)
                                     : "connection closed by the daemon"));
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::string Client::readLine() {
  char chunk[65536];
  while (true) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      throw qirkit::Error(ErrorCode::Io,
                          "connection closed by the daemon before a full "
                          "response arrived");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::call(std::string_view requestLine) {
  sendRaw(std::string(requestLine) + "\n");
  return readLine();
}

} // namespace qirkit::service
