#include "service/client.hpp"

#include "support/error.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qirkit::service {

Client::Client(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    throw qirkit::Error(ErrorCode::Usage,
                        "socket path longer than " +
                            std::to_string(sizeof(addr.sun_path) - 1) +
                            " bytes: '" + socketPath + "'");
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw qirkit::Error(ErrorCode::Io,
                        std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw qirkit::Error(ErrorCode::Io, "cannot connect to '" + socketPath +
                                           "': " + why +
                                           " (is the daemon running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Client::sendRaw(std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      throw qirkit::Error(ErrorCode::Io,
                          std::string("send: ") +
                              (n < 0 ? std::strerror(errno)
                                     : "connection closed by the daemon"));
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::string Client::readLine() {
  char chunk[65536];
  while (true) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      throw qirkit::Error(ErrorCode::Io,
                          "connection closed by the daemon before a full "
                          "response arrived");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::call(std::string_view requestLine) {
  sendRaw(std::string(requestLine) + "\n");
  return readLine();
}

} // namespace qirkit::service
