/// \file client.hpp
/// Minimal blocking client for the `qirkit serve` socket protocol: connect
/// to the daemon's Unix-domain socket, send one request line, read one
/// response line. Used by `qirkit submit`, the smoke harness, and the
/// service bench; tests drive the raw line API to exercise the server's
/// malformed-frame handling.
///
/// Construction installs a process-wide SIGPIPE ignore (once): every
/// socket write already passes MSG_NOSIGNAL, but a handler-less SIGPIPE
/// from any other fd the embedding process writes would still kill it, and
/// a CLI that dies instead of printing error[io] breaks the exit-code
/// contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qirkit::service {

/// Connection behavior of the client. Retries cover *connecting* only —
/// a request that already reached the daemon is never resent (the caller
/// cannot know whether it executed).
struct ClientOptions {
  /// Extra connect attempts after the first fails with a transient error
  /// (ECONNREFUSED / ENOENT / EAGAIN — the daemon still starting or busy
  /// accepting). 0 preserves the old fail-fast behavior.
  unsigned connectRetries = 0;
  /// First retry delay; doubles each attempt (bounded exponential
  /// backoff), each sleep jittered uniformly in [delay/2, delay] so
  /// simultaneous clients do not reconnect in lockstep.
  std::uint64_t backoffBaseMs = 25;
  std::uint64_t backoffCapMs = 1000;
};

class Client {
public:
  /// Connect to the daemon at \p socketPath. Throws Error(ErrorCode::Io)
  /// when the socket cannot be reached (daemon not running, bad path)
  /// after exhausting the configured retries.
  explicit Client(const std::string& socketPath,
                  const ClientOptions& options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request frame (newline appended) and block for the
  /// response line. Throws Error(ErrorCode::Io) when the connection
  /// drops mid-call.
  [[nodiscard]] std::string call(std::string_view requestLine);

  /// Send raw bytes verbatim — no newline appended. Lets tests emit
  /// partial, oversized, or multi-frame writes.
  void sendRaw(std::string_view bytes);

  /// Block for the next newline-terminated response (newline stripped).
  [[nodiscard]] std::string readLine();

private:
  int fd_ = -1;
  std::string buffer_; // bytes past the last returned line
};

} // namespace qirkit::service
