/// \file client.hpp
/// Minimal blocking client for the `qirkit serve` socket protocol: connect
/// to the daemon's Unix-domain socket, send one request line, read one
/// response line. Used by `qirkit submit`, the smoke harness, and the
/// service bench; tests drive the raw line API to exercise the server's
/// malformed-frame handling.
#pragma once

#include <string>
#include <string_view>

namespace qirkit::service {

class Client {
public:
  /// Connect to the daemon at \p socketPath. Throws Error(ErrorCode::Io)
  /// when the socket cannot be reached (daemon not running, bad path).
  explicit Client(const std::string& socketPath);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request frame (newline appended) and block for the
  /// response line. Throws Error(ErrorCode::Io) when the connection
  /// drops mid-call.
  [[nodiscard]] std::string call(std::string_view requestLine);

  /// Send raw bytes verbatim — no newline appended. Lets tests emit
  /// partial, oversized, or multi-frame writes.
  void sendRaw(std::string_view bytes);

  /// Block for the next newline-terminated response (newline stripped).
  [[nodiscard]] std::string readLine();

private:
  int fd_ = -1;
  std::string buffer_; // bytes past the last returned line
};

} // namespace qirkit::service
