#include "service/prometheus.hpp"

#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

namespace qirkit::service {

namespace {

/// Label values escape per the exposition format: backslash, quote, and
/// newline only.
std::string labelEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
    case '\\': out += "\\\\"; break;
    case '"': out += "\\\""; break;
    case '\n': out += "\\n"; break;
    default: out += c;
    }
  }
  return out;
}

void emitType(std::ostringstream& out, const std::string& name,
              const char* type) {
  out << "# TYPE " << name << " " << type << "\n";
}

/// One histogram's series, with optional extra label (e.g.
/// tenant="acme") prefixed into every series' label set.
void emitHistogram(std::ostringstream& out, const std::string& name,
                   const std::string& extraLabel,
                   const qirkit::telemetry::LatencyHistogram& h) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < qirkit::telemetry::LatencyHistogram::kBuckets;
       ++i) {
    const std::uint64_t n = h.bucketCount(i);
    if (n == 0) {
      continue;
    }
    cumulative += n;
    const std::uint64_t le = std::uint64_t{1}
                             << std::min<std::size_t>(i + 1, 63);
    out << name << "_bucket{" << extraLabel << "le=\"" << le
        << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{" << extraLabel << "le=\"+Inf\"} " << h.count()
      << "\n";
  if (extraLabel.empty()) {
    out << name << "_sum " << h.sum() << "\n";
    out << name << "_count " << h.count() << "\n";
  } else {
    // Strip the trailing comma the bucket series needed before "le".
    const std::string labels = extraLabel.substr(0, extraLabel.size() - 1);
    out << name << "_sum{" << labels << "} " << h.sum() << "\n";
    out << name << "_count{" << labels << "} " << h.count() << "\n";
  }
}

} // namespace

std::string prometheusName(std::string_view name) {
  std::string out = "qirkit_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheusText() {
  namespace tel = qirkit::telemetry;
  std::ostringstream out;

  // Scalars: a Snapshot carries every counter and gauge with its kind.
  const tel::Snapshot snap = tel::snapshot();
  for (const tel::Snapshot::Scalar& s : snap.scalars) {
    const std::string name = prometheusName(s.name);
    emitType(out, name, s.monotonic ? "counter" : "gauge");
    out << name << " " << s.value << "\n";
  }

  for (const tel::LatencyHistogram* h : tel::allHistograms()) {
    const std::string name = prometheusName(h->name());
    emitType(out, name, "histogram");
    emitHistogram(out, name, "", *h);
  }

  for (const tel::LabeledCounter* c : tel::allLabeledCounters()) {
    const std::string name = prometheusName(c->name());
    emitType(out, name, "counter");
    for (const auto& [label, value] : c->values()) {
      out << name << "{" << c->labelKey() << "=\"" << labelEscape(label)
          << "\"} " << value << "\n";
    }
    const std::string evicted = name + "_evicted";
    emitType(out, evicted, "counter");
    out << evicted << " " << c->evictions() << "\n";
  }

  for (const tel::LabeledHistogram* lh : tel::allLabeledHistograms()) {
    const std::string name = prometheusName(lh->name());
    emitType(out, name, "histogram");
    lh->forEach([&](const std::string& label, const tel::LatencyHistogram& h) {
      const std::string extraLabel = std::string(lh->labelKey()) + "=\"" +
                                     labelEscape(label) + "\",";
      emitHistogram(out, name, extraLabel, h);
    });
    const std::string evicted = name + "_evicted";
    emitType(out, evicted, "counter");
    out << evicted << " " << lh->evictions() << "\n";
  }

  return out.str();
}

} // namespace qirkit::service
