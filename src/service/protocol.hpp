/// \file protocol.hpp
/// The wire protocol of `qirkit serve`: line-delimited JSON over a local
/// stream socket. Each request is one JSON object on one line; each
/// response is one JSON object on one line. The connection is persistent —
/// a malformed or oversized frame earns a structured error response (and a
/// telemetry counter), never a torn-down connection, mirroring how the CLI
/// turns bad numeric options into error[usage] instead of an abort.
///
/// Requests ("type" selects the verb):
///   {"type":"submit","tenant":T,"program":TEXT,...}   run a shot batch
///   {"type":"submit","tenant":T,"program_ref":ID,...} rerun a registered
///                                                     program by content id
///   {"type":"metrics"}                                service gauges + cache
///                                                     + telemetry snapshot
///   {"type":"metrics","format":"prometheus"}          same data as Prometheus
///                                                     text exposition (in the
///                                                     "body" response field)
///   {"type":"events","tenant":T?,"limit":N?}          recent request records
///                                                     from the flight recorder
///   {"type":"ping"}                                   liveness probe
///   {"type":"cancel","tenant":T,"request_id":R}       cancel a tagged job
///   {"type":"shutdown"}                               drain and exit
///
/// Submit fields: shots (default 100), seed (default: the tenant's seed
/// stream), engine ("vm"|"interp"), exec_mode ("auto"|"resim"|"sample"),
/// fusion (bool), dispatch ("switch"|"threaded"; absent = server default),
/// precision ("f64"|"f32"), force_f32 (bool; admit f32 for
/// feedback-dependent programs), priority (higher runs earlier within the
/// tenant),
/// deadline_ms (wall budget from admission; 0/absent = none — covers queue
/// wait, so a job can expire while still pending), request_id (caller tag
/// that makes the job addressable by the cancel verb).
///
/// Responses: {"ok":true,...} per verb, or
///   {"ok":false,"error":{"code":"<kebab-case ErrorCode>","message":M},...}
/// — the same taxonomy (support/error.hpp) the CLI maps to exit codes, so
/// `qirkit submit` preserves the exit-code contract end to end. Overload
/// rejections (error[resource-limit]) carry a top-level "retry_after_ms"
/// hint; deadline cuts (error[deadline]) carry "completed_shots" /
/// "unstarted_shots" so callers see how far the job got.
#pragma once

#include "support/error.hpp"
#include "vm/executor.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qirkit::service {

/// Protocol revision carried in every response ("v" field).
inline constexpr int kProtocolVersion = 1;

/// Frames longer than this (bytes, excluding the newline) are rejected
/// with error[usage] and skipped; the connection stays usable.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4U << 20U;

enum class RequestType : std::uint8_t {
  Submit,
  Metrics,
  Ping,
  Cancel,
  Shutdown,
  Events,
};

struct SubmitRequest {
  std::string tenant;
  std::string program;    // inline program text (QIR .ll or OpenQASM 2/3)
  std::string programRef; // content id returned by an earlier submit
  std::uint64_t shots = 100;
  std::optional<std::uint64_t> seed; // absent: drawn from the tenant stream
  vm::Engine engine = vm::Engine::Vm;
  vm::ExecMode execMode = vm::ExecMode::Auto;
  bool fusion = true;
  /// Dispatch loop for the VM engine ("switch"|"threaded"); absent in the
  /// wire form means the server build's default.
  vm::DispatchMode dispatch = vm::defaultDispatchMode();
  /// Amplitude storage width; f32 halves the state's memory footprint and
  /// traffic (see ShotOptions::precision for the admission rule).
  sim::Precision precision = sim::Precision::F64;
  bool forceF32 = false;
  std::int64_t priority = 0;
  /// Wall-clock budget in milliseconds, measured from admission — queue
  /// wait counts, so a job can expire while still pending. 0 = none.
  std::uint64_t deadlineMs = 0;
  /// Caller-chosen tag; a non-empty id makes the job addressable by the
  /// cancel verb (scoped to the tenant, so tenants cannot cancel each
  /// other's work).
  std::string requestId;
};

/// The cancel verb: request the cooperative cancellation of the job tagged
/// (tenant, request_id). Affects pending and running jobs alike.
struct CancelRequest {
  std::string tenant;
  std::string requestId;
};

/// The metrics verb: "format" selects JSON (default) or Prometheus text
/// exposition (returned escaped in the response's "body" field, since the
/// transport is line-delimited JSON).
struct MetricsRequest {
  bool prometheus = false;
};

/// The events verb: query the flight recorder's recent request records,
/// newest last. An empty tenant returns every tenant; limit 0 means all
/// retained records.
struct EventsRequest {
  std::string tenant;
  std::uint64_t limit = 0;
};

struct Request {
  RequestType type = RequestType::Ping;
  SubmitRequest submit;   // meaningful when type == Submit
  CancelRequest cancel;   // meaningful when type == Cancel
  MetricsRequest metrics; // meaningful when type == Metrics
  EventsRequest events;   // meaningful when type == Events
};

/// Parse one request line. Throws qirkit::Error — ErrorCode::Parse for
/// malformed JSON, ErrorCode::Usage for a structurally valid frame with a
/// missing/invalid field — for the server to map onto an error response.
[[nodiscard]] Request parseRequest(std::string_view line);

/// Serialize a submit request to one frame (no trailing newline).
[[nodiscard]] std::string submitRequestJson(const SubmitRequest& request);

/// Serialize a bodyless request (metrics / ping / shutdown / events).
[[nodiscard]] std::string simpleRequestJson(RequestType type);

/// Serialize a cancel request.
[[nodiscard]] std::string cancelRequestJson(const CancelRequest& request);

/// Serialize a metrics request (carries "format" only when non-default).
[[nodiscard]] std::string metricsRequestJson(const MetricsRequest& request);

/// Serialize an events request.
[[nodiscard]] std::string eventsRequestJson(const EventsRequest& request);

/// Render the structured error response for a classified failure.
/// \p extraJson, when non-empty, is spliced verbatim as additional
/// top-level members (e.g. "\"retry_after_ms\":100") — the channel for
/// machine-readable recovery hints beside the error object.
[[nodiscard]] std::string errorResponseJson(ErrorCode code,
                                            const std::string& message,
                                            const std::string& extraJson = {});

/// Render the cancel response: whether a live job with that id was found
/// (its submit response still arrives on the submitting connection, as
/// error[deadline]).
[[nodiscard]] std::string cancelResponseJson(bool found);

/// Reverse of errorCodeName: map a response's kebab-case code back onto
/// the taxonomy so `qirkit submit` can honor the exit-code contract.
/// Unknown names classify as Internal, the conservative default.
[[nodiscard]] ErrorCode errorCodeFromName(std::string_view name) noexcept;

/// Render the ping response.
[[nodiscard]] std::string pingResponseJson();

/// The submit response: histogram plus the per-shot stats `qirkit run`
/// prints, the program's content id, cache attribution, queue/exec
/// timings, and the per-request telemetry delta (a snapshotJson object).
struct SubmitResponse {
  std::string programId;
  std::uint64_t jobId = 0;
  std::uint64_t shots = 0;
  std::uint64_t seed = 0;
  vm::ShotBatchResult batch;
  std::uint64_t queueWaitNs = 0;
  std::uint64_t execNs = 0;
  std::string metricsDeltaJson; // "{}" when telemetry is disabled
  /// Per-stage breakdown from the request trace (a JSON array,
  /// RequestTrace::stagesJson); empty omits the "stages" member.
  std::string stagesJson;
};

[[nodiscard]] std::string submitResponseJson(const SubmitResponse& response);

} // namespace qirkit::service
