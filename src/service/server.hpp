/// \file server.hpp
/// The `qirkit serve` daemon: a Unix-domain stream socket speaking the
/// line-delimited JSON protocol (protocol.hpp), an admission queue
/// (queue.hpp), a bounded registry of parsed programs (content-addressed,
/// so tenants can resubmit by id and pay parsing once), one shared
/// CompileCache, and one shared ThreadPool that every job's shot chunks
/// multiplex onto.
///
/// Threading model: one accept thread, one thread per live connection
/// (reads frames, admits jobs, blocks on the job's completion), and
/// `runners` job-runner threads popping the queue and calling the existing
/// shot executor with the injected pool + cache. Runner threads are the
/// only place programs execute, so `runners` bounds concurrent batches
/// while the pool bounds total shot-kernel parallelism — nothing
/// oversubscribes.
///
/// Everything the per-process CLI treats as a singleton is a member here:
/// the cache, the pool, and the program registry live and die with the
/// Server, which is why a test (or bench) can run several servers in one
/// process.
#pragma once

#include "service/flight_recorder.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "support/parallel.hpp"
#include "vm/cache.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qirkit::ir {
class Context;
class Module;
} // namespace qirkit::ir

namespace qirkit::service {

struct ServerOptions {
  /// Filesystem path of the Unix-domain socket. Created on start(),
  /// unlinked on stop().
  std::string socketPath;
  /// Job-runner threads: concurrent batches in flight.
  std::size_t runners = 2;
  /// Shot worker pool shared by every batch; 0 sizes to the hardware.
  std::size_t poolThreads = 0;
  /// Resident bound of the shared compile cache.
  std::size_t cacheCapacity = vm::CompileCache::kDefaultCapacity;
  /// Resident bound of the parsed-program registry.
  std::size_t programCapacity = 64;
  /// Longest accepted request frame in bytes.
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  /// Upfront memory-admission budget: the predicted statevector
  /// footprints (2^n * sizeof(complex<double>)) of every in-flight job
  /// may not sum past this — the excess request is rejected with
  /// error[resource-limit] at admission instead of OOM-killing the daemon
  /// mid-simulation. 0 disables the guard. Programs whose width cannot be
  /// predicted (no required_num_qubits attribute) are admitted with a
  /// footprint of 0 and rely on the StateVector bad_alloc guard instead.
  std::uint64_t memoryBudgetBytes = 8ULL << 30U;
  /// Watchdog: a job still unfinished after watchdogFactor x its own
  /// deadline budget (counted from admission) is flagged and its token
  /// force-cancelled — the backstop for a runner stuck inside a shot that
  /// stops probing. 0 disables; jobs without deadlines are never flagged.
  unsigned watchdogFactor = 4;
  /// Flight recorder: how many recent request records the `events` verb
  /// can replay. Clamped to at least 1.
  std::size_t flightCapacity = 256;
  /// Requests slower than this (admission to delivery) keep their full
  /// per-stage trace in the flight recorder even when they succeed;
  /// errored requests always keep theirs. 0 marks nothing as slow.
  std::uint64_t slowThresholdMs = 1000;
  /// Arm the process-wide telemetry registry on start(). The serve
  /// observability surface (per-tenant families, latency percentiles,
  /// the telemetry section of the metrics verb) feeds from it, so the
  /// daemon runs armed by default; `--no-telemetry` opts out and leaves
  /// every probe at its one-relaxed-load disabled cost.
  bool enableTelemetry = true;
  QueueLimits queue;
};

class Server {
public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and spawn the accept + runner threads. Throws
  /// Error(ErrorCode::Io) when the path cannot be bound.
  void start();

  /// Block until a shutdown request (or requestShutdown()) arrives, then
  /// drain and join everything.
  void run();

  /// Ask the daemon to stop: close admission, stop accepting, wake run().
  void requestShutdown();

  /// Drain and join without blocking in run() (used by in-process tests
  /// and the bench fixture; idempotent).
  void stop();

  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
  [[nodiscard]] vm::CompileCache& cache() noexcept { return cache_; }

  /// The metrics document served for {"type":"metrics"}: queue depth and
  /// quotas, per-tenant gauges, cache hit rate, program-registry size,
  /// protocol rejects, and the full telemetry snapshot.
  [[nodiscard]] std::string metricsJson();

private:
  /// One parsed program, shared by every job that references it. The
  /// Context owns the IR; jobs only read the module, which is safe
  /// concurrently.
  struct ProgramEntry {
    std::string id; // 16-hex FNV-1a of the program text
    std::unique_ptr<ir::Context> context;
    std::unique_ptr<ir::Module> module;
    /// Declared register width (entry point's required_num_qubits
    /// attribute; 0 = unknown) — the input of the admission guard's
    /// footprint prediction.
    unsigned qubits = 0;
    std::uint64_t lastUse = 0;
  };

  /// One admitted-but-unfinished job, as the overload machinery sees it:
  /// the cancel verb resolves (tenant, request_id) to the token, the
  /// watchdog scans deadlines, and the memory guard accounts stateBytes.
  /// Registered before the queue push (the runner may pop immediately),
  /// unregistered once the submit response is delivered.
  struct ActiveJob {
    std::shared_ptr<qirkit::CancelToken> cancel;
    std::string tenant;
    std::string requestId; // empty: not cancellable by verb
    std::uint64_t deadlineMs = 0;
    std::uint64_t deadlineNs = 0; // absolute; 0 = none
    std::uint64_t admittedNs = 0;
    std::uint64_t stateBytes = 0; // predicted footprint
    std::uint64_t shots = 0;
    /// Set by the watchdog before it force-cancels; read lock-free by the
    /// runner to attribute the resulting deadline error to "watchdog"
    /// rather than a client cancel.
    std::atomic<bool> watchdogFlagged{false};
  };

  void acceptLoop();
  void connectionLoop(int fd);
  void runnerLoop();
  void watchdogLoop();
  /// Dispatch one well-formed frame; returns the response line.
  std::string handleRequest(const Request& request);
  /// Admission path of a submit: resolve the program, enqueue, and wait
  /// for the runner's response.
  std::string handleSubmit(const SubmitRequest& request);
  std::string handleCancel(const CancelRequest& request);
  /// Replay the flight recorder for {"type":"events"}.
  std::string handleEvents(const EventsRequest& request);
  /// The metrics verb's format=prometheus mode: the exposition text,
  /// escaped into the JSON response's "body" field.
  std::string prometheusMetricsJson();
  void executeJob(Job& job);
  /// Archive one finished (or rejected/expired) job into the flight
  /// recorder and flush its request trace to the Chrome-trace stream.
  void recordFlight(const Job& job, std::uint64_t queueWaitNs,
                    std::uint64_t execNs, const char* outcome,
                    const char* errorCode, std::string cause);
  /// Memory-admission guard + registration; throws AdmissionError when
  /// the predicted footprint does not fit the budget.
  void registerActive(const std::shared_ptr<ActiveJob>& active);
  void unregisterActive(const std::shared_ptr<ActiveJob>& active);
  /// Parse-or-lookup in the program registry (single-flight per id).
  std::shared_ptr<ProgramEntry> resolveProgram(const SubmitRequest& request);

  ServerOptions options_;
  AdmissionQueue queue_;
  vm::CompileCache cache_;
  ThreadPool pool_;
  FlightRecorder flight_;
  std::uint64_t startedNs_ = 0;

  int listenFd_ = -1;
  std::thread acceptThread_;
  std::thread watchdogThread_;
  std::vector<std::thread> runnerThreads_;

  std::mutex activeMutex_;
  std::list<std::shared_ptr<ActiveJob>> active_;
  std::uint64_t inFlightStateBytes_ = 0;

  std::mutex connectionsMutex_;
  std::list<std::pair<int, std::thread>> connections_;
  /// Requests currently between decode and response write; stop() waits
  /// for this to reach zero before shutting the sockets down, so drained
  /// jobs deliver their final responses instead of torn connections.
  std::atomic<std::size_t> busyRequests_{0};

  std::mutex programsMutex_;
  std::unordered_map<std::string, std::shared_ptr<ProgramEntry>> programs_;
  std::uint64_t programTick_ = 0;

  std::mutex shutdownMutex_;
  std::condition_variable shutdownCv_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
};

} // namespace qirkit::service
