/// \file server.hpp
/// The `qirkit serve` daemon: a Unix-domain stream socket speaking the
/// line-delimited JSON protocol (protocol.hpp), an admission queue
/// (queue.hpp), a bounded registry of parsed programs (content-addressed,
/// so tenants can resubmit by id and pay parsing once), one shared
/// CompileCache, and one shared ThreadPool that every job's shot chunks
/// multiplex onto.
///
/// Threading model: one accept thread, one thread per live connection
/// (reads frames, admits jobs, blocks on the job's completion), and
/// `runners` job-runner threads popping the queue and calling the existing
/// shot executor with the injected pool + cache. Runner threads are the
/// only place programs execute, so `runners` bounds concurrent batches
/// while the pool bounds total shot-kernel parallelism — nothing
/// oversubscribes.
///
/// Everything the per-process CLI treats as a singleton is a member here:
/// the cache, the pool, and the program registry live and die with the
/// Server, which is why a test (or bench) can run several servers in one
/// process.
#pragma once

#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "support/parallel.hpp"
#include "vm/cache.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qirkit::ir {
class Context;
class Module;
} // namespace qirkit::ir

namespace qirkit::service {

struct ServerOptions {
  /// Filesystem path of the Unix-domain socket. Created on start(),
  /// unlinked on stop().
  std::string socketPath;
  /// Job-runner threads: concurrent batches in flight.
  std::size_t runners = 2;
  /// Shot worker pool shared by every batch; 0 sizes to the hardware.
  std::size_t poolThreads = 0;
  /// Resident bound of the shared compile cache.
  std::size_t cacheCapacity = vm::CompileCache::kDefaultCapacity;
  /// Resident bound of the parsed-program registry.
  std::size_t programCapacity = 64;
  /// Longest accepted request frame in bytes.
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  QueueLimits queue;
};

class Server {
public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and spawn the accept + runner threads. Throws
  /// Error(ErrorCode::Io) when the path cannot be bound.
  void start();

  /// Block until a shutdown request (or requestShutdown()) arrives, then
  /// drain and join everything.
  void run();

  /// Ask the daemon to stop: close admission, stop accepting, wake run().
  void requestShutdown();

  /// Drain and join without blocking in run() (used by in-process tests
  /// and the bench fixture; idempotent).
  void stop();

  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
  [[nodiscard]] vm::CompileCache& cache() noexcept { return cache_; }

  /// The metrics document served for {"type":"metrics"}: queue depth and
  /// quotas, per-tenant gauges, cache hit rate, program-registry size,
  /// protocol rejects, and the full telemetry snapshot.
  [[nodiscard]] std::string metricsJson();

private:
  /// One parsed program, shared by every job that references it. The
  /// Context owns the IR; jobs only read the module, which is safe
  /// concurrently.
  struct ProgramEntry {
    std::string id; // 16-hex FNV-1a of the program text
    std::unique_ptr<ir::Context> context;
    std::unique_ptr<ir::Module> module;
    std::uint64_t lastUse = 0;
  };

  void acceptLoop();
  void connectionLoop(int fd);
  void runnerLoop();
  /// Dispatch one well-formed frame; returns the response line.
  std::string handleRequest(const Request& request);
  /// Admission path of a submit: resolve the program, enqueue, and wait
  /// for the runner's response.
  std::string handleSubmit(const SubmitRequest& request);
  void executeJob(Job& job);
  /// Parse-or-lookup in the program registry (single-flight per id).
  std::shared_ptr<ProgramEntry> resolveProgram(const SubmitRequest& request);

  ServerOptions options_;
  AdmissionQueue queue_;
  vm::CompileCache cache_;
  ThreadPool pool_;
  std::uint64_t startedNs_ = 0;

  int listenFd_ = -1;
  std::thread acceptThread_;
  std::vector<std::thread> runnerThreads_;

  std::mutex connectionsMutex_;
  std::list<std::pair<int, std::thread>> connections_;

  std::mutex programsMutex_;
  std::unordered_map<std::string, std::shared_ptr<ProgramEntry>> programs_;
  std::uint64_t programTick_ = 0;

  std::mutex shutdownMutex_;
  std::condition_variable shutdownCv_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
};

} // namespace qirkit::service
