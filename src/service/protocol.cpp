#include "service/protocol.hpp"

#include "service/json.hpp"
#include "support/telemetry/telemetry.hpp"

#include <cmath>
#include <sstream>

namespace qirkit::service {

namespace {

using telemetry::jsonEscape;

[[noreturn]] void badField(const std::string& message) {
  throw qirkit::Error(ErrorCode::Usage, message);
}

std::string stringField(const json::Value& root, std::string_view key,
                        std::string fallback = {}) {
  const json::Value* v = root.find(key);
  if (v == nullptr) {
    return fallback;
  }
  if (!v->isString()) {
    badField("field '" + std::string(key) + "' must be a string");
  }
  return v->string;
}

SubmitRequest parseSubmit(const json::Value& root) {
  SubmitRequest req;
  req.tenant = stringField(root, "tenant");
  if (req.tenant.empty()) {
    badField("submit requires a non-empty 'tenant'");
  }
  req.program = stringField(root, "program");
  req.programRef = stringField(root, "program_ref");
  if (req.program.empty() == req.programRef.empty()) {
    badField("submit requires exactly one of 'program' or 'program_ref'");
  }
  if (const json::Value* v = root.find("shots")) {
    req.shots = v->asU64("shots");
  }
  if (const json::Value* v = root.find("seed")) {
    req.seed = v->asU64("seed");
  }
  const std::string engine = stringField(root, "engine", "vm");
  if (engine == "vm") {
    req.engine = vm::Engine::Vm;
  } else if (engine == "interp") {
    req.engine = vm::Engine::Interp;
  } else {
    badField("field 'engine' must be vm or interp");
  }
  const std::string mode = stringField(root, "exec_mode", "auto");
  if (mode == "auto") {
    req.execMode = vm::ExecMode::Auto;
  } else if (mode == "resim") {
    req.execMode = vm::ExecMode::Resim;
  } else if (mode == "sample") {
    req.execMode = vm::ExecMode::Sample;
  } else {
    badField("field 'exec_mode' must be auto, resim, or sample");
  }
  if (const json::Value* v = root.find("fusion")) {
    if (!v->isBool()) {
      badField("field 'fusion' must be a boolean");
    }
    req.fusion = v->boolean;
  }
  // Absent means "the server build's default" — clients need not know
  // whether the server carries the threaded loop.
  const std::string dispatch =
      stringField(root, "dispatch", vm::dispatchModeName(req.dispatch));
  if (dispatch == "switch") {
    req.dispatch = vm::DispatchMode::Switch;
  } else if (dispatch == "threaded") {
    req.dispatch = vm::DispatchMode::Threaded;
  } else {
    badField("field 'dispatch' must be switch or threaded");
  }
  if (!sim::parsePrecision(stringField(root, "precision", "f64"),
                           req.precision)) {
    badField("field 'precision' must be f64 or f32");
  }
  if (const json::Value* v = root.find("force_f32")) {
    if (!v->isBool()) {
      badField("field 'force_f32' must be a boolean");
    }
    req.forceF32 = v->boolean;
  }
  if (const json::Value* v = root.find("priority")) {
    if (!v->isNumber() || std::floor(v->number) != v->number) {
      badField("field 'priority' must be an integer");
    }
    req.priority = static_cast<std::int64_t>(v->number);
  }
  if (const json::Value* v = root.find("deadline_ms")) {
    req.deadlineMs = v->asU64("deadline_ms");
  }
  req.requestId = stringField(root, "request_id");
  return req;
}

CancelRequest parseCancel(const json::Value& root) {
  CancelRequest req;
  req.tenant = stringField(root, "tenant");
  req.requestId = stringField(root, "request_id");
  if (req.tenant.empty() || req.requestId.empty()) {
    badField("cancel requires non-empty 'tenant' and 'request_id'");
  }
  return req;
}

MetricsRequest parseMetrics(const json::Value& root) {
  MetricsRequest req;
  const std::string format = stringField(root, "format", "json");
  if (format == "prometheus") {
    req.prometheus = true;
  } else if (format != "json") {
    badField("field 'format' must be json or prometheus");
  }
  return req;
}

EventsRequest parseEvents(const json::Value& root) {
  EventsRequest req;
  req.tenant = stringField(root, "tenant");
  if (const json::Value* v = root.find("limit")) {
    req.limit = v->asU64("limit");
  }
  return req;
}

} // namespace

Request parseRequest(std::string_view line) {
  const json::Value root = json::parse(line);
  if (!root.isObject()) {
    badField("request must be a JSON object");
  }
  const std::string type = stringField(root, "type");
  Request req;
  if (type == "submit") {
    req.type = RequestType::Submit;
    req.submit = parseSubmit(root);
  } else if (type == "metrics") {
    req.type = RequestType::Metrics;
    req.metrics = parseMetrics(root);
  } else if (type == "events") {
    req.type = RequestType::Events;
    req.events = parseEvents(root);
  } else if (type == "ping") {
    req.type = RequestType::Ping;
  } else if (type == "cancel") {
    req.type = RequestType::Cancel;
    req.cancel = parseCancel(root);
  } else if (type == "shutdown") {
    req.type = RequestType::Shutdown;
  } else {
    badField(type.empty() ? "request is missing 'type'"
                          : "unknown request type '" + type + "'");
  }
  return req;
}

std::string submitRequestJson(const SubmitRequest& request) {
  std::ostringstream out;
  out << "{\"type\":\"submit\",\"tenant\":\"" << jsonEscape(request.tenant)
      << "\"";
  if (!request.program.empty()) {
    out << ",\"program\":\"" << jsonEscape(request.program) << "\"";
  }
  if (!request.programRef.empty()) {
    out << ",\"program_ref\":\"" << jsonEscape(request.programRef) << "\"";
  }
  out << ",\"shots\":" << request.shots;
  if (request.seed.has_value()) {
    out << ",\"seed\":" << *request.seed;
  }
  out << ",\"engine\":\"" << vm::engineName(request.engine)
      << "\",\"exec_mode\":\"" << vm::execModeName(request.execMode)
      << "\",\"fusion\":" << (request.fusion ? "true" : "false")
      << ",\"dispatch\":\"" << vm::dispatchModeName(request.dispatch) << "\""
      << ",\"precision\":\"" << sim::precisionName(request.precision)
      << "\",\"force_f32\":" << (request.forceF32 ? "true" : "false")
      << ",\"priority\":" << request.priority;
  if (request.deadlineMs != 0) {
    out << ",\"deadline_ms\":" << request.deadlineMs;
  }
  if (!request.requestId.empty()) {
    out << ",\"request_id\":\"" << jsonEscape(request.requestId) << "\"";
  }
  out << "}";
  return out.str();
}

std::string cancelRequestJson(const CancelRequest& request) {
  std::ostringstream out;
  out << "{\"type\":\"cancel\",\"tenant\":\"" << jsonEscape(request.tenant)
      << "\",\"request_id\":\"" << jsonEscape(request.requestId) << "\"}";
  return out.str();
}

std::string simpleRequestJson(RequestType type) {
  const char* name = type == RequestType::Metrics    ? "metrics"
                     : type == RequestType::Shutdown ? "shutdown"
                     : type == RequestType::Events   ? "events"
                                                     : "ping";
  return std::string("{\"type\":\"") + name + "\"}";
}

std::string metricsRequestJson(const MetricsRequest& request) {
  return request.prometheus
             ? std::string("{\"type\":\"metrics\",\"format\":\"prometheus\"}")
             : std::string("{\"type\":\"metrics\"}");
}

std::string eventsRequestJson(const EventsRequest& request) {
  std::ostringstream out;
  out << "{\"type\":\"events\"";
  if (!request.tenant.empty()) {
    out << ",\"tenant\":\"" << jsonEscape(request.tenant) << "\"";
  }
  if (request.limit != 0) {
    out << ",\"limit\":" << request.limit;
  }
  out << "}";
  return out.str();
}

std::string errorResponseJson(ErrorCode code, const std::string& message,
                              const std::string& extraJson) {
  std::ostringstream out;
  out << "{\"v\":" << kProtocolVersion
      << ",\"ok\":false,\"error\":{\"code\":\"" << errorCodeName(code)
      << "\",\"message\":\"" << jsonEscape(message) << "\"}";
  if (!extraJson.empty()) {
    out << "," << extraJson;
  }
  out << "}";
  return out.str();
}

std::string cancelResponseJson(bool found) {
  std::ostringstream out;
  out << "{\"v\":" << kProtocolVersion << ",\"ok\":true,\"type\":\"cancel\""
      << ",\"found\":" << (found ? "true" : "false") << "}";
  return out.str();
}

ErrorCode errorCodeFromName(std::string_view name) noexcept {
  static constexpr ErrorCode kCodes[] = {
      ErrorCode::Parse,           ErrorCode::Verify,
      ErrorCode::Semantic,        ErrorCode::Io,
      ErrorCode::Usage,           ErrorCode::Trap,
      ErrorCode::TrapOutOfBounds, ErrorCode::TrapUnboundExternal,
      ErrorCode::TrapArithmetic,  ErrorCode::TrapInvalidQubit,
      ErrorCode::TrapUnreachable, ErrorCode::StepBudgetExceeded,
      ErrorCode::ResourceLimit,   ErrorCode::CompileFail,
      ErrorCode::InjectedFault,   ErrorCode::Deadline,
      ErrorCode::Internal,
  };
  for (const ErrorCode code : kCodes) {
    if (name == errorCodeName(code)) {
      return code;
    }
  }
  return ErrorCode::Internal;
}

std::string pingResponseJson() {
  std::ostringstream out;
  out << "{\"v\":" << kProtocolVersion << ",\"ok\":true,\"type\":\"pong\"}";
  return out.str();
}

std::string submitResponseJson(const SubmitResponse& response) {
  const vm::ShotBatchResult& batch = response.batch;
  std::ostringstream out;
  out << "{\"v\":" << kProtocolVersion << ",\"ok\":true,\"type\":\"result\""
      << ",\"job_id\":" << response.jobId << ",\"program_id\":\""
      << jsonEscape(response.programId) << "\",\"shots\":" << response.shots
      << ",\"seed\":" << response.seed << ",\"engine\":\""
      << vm::engineName(batch.engineUsed) << "\",\"sampled\":"
      << (batch.sampled ? "true" : "false")
      << ",\"gates_per_shot\":" << batch.lastShotStats.gatesApplied
      << ",\"measurements_per_shot\":" << batch.lastShotStats.measurements
      << ",\"completed_shots\":" << batch.completedShots
      << ",\"failed_shots\":" << batch.failedShots << ",\"histogram\":{";
  bool first = true;
  for (const auto& [bits, count] : batch.histogram) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << jsonEscape(bits) << "\":" << count;
  }
  out << "},\"failure_counts\":{";
  first = true;
  for (const auto& [code, count] : batch.failureCounts) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << errorCodeName(code) << "\":" << count;
  }
  out << "},\"cache\":{\"hits\":" << batch.cacheHits
      << ",\"misses\":" << batch.cacheMisses << "}"
      << ",\"queue_wait_ns\":" << response.queueWaitNs
      << ",\"exec_ns\":" << response.execNs << ",\"metrics\":"
      << (response.metricsDeltaJson.empty() ? "{}" : response.metricsDeltaJson);
  if (!response.stagesJson.empty()) {
    out << ",\"stages\":" << response.stagesJson;
  }
  if (batch.degradedToInterp) {
    out << ",\"degraded\":\"" << jsonEscape(batch.degradeReason) << "\"";
  }
  if (batch.sampleFallback) {
    out << ",\"sample_fallback\":\"" << jsonEscape(batch.sampleFallbackReason)
        << "\"";
  }
  out << "}";
  return out.str();
}

} // namespace qirkit::service
