#include "service/flight_recorder.hpp"

#include "support/telemetry/telemetry.hpp"

#include <sstream>

namespace qirkit::service {

using telemetry::jsonEscape;

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::uint64_t slowThresholdNs)
    : capacity_(capacity == 0 ? 1 : capacity), slowThresholdNs_(slowThresholdNs) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(FlightRecord rec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rec.seq = ++seq_;
  rec.slow = slowThresholdNs_ != 0 && rec.totalNs >= slowThresholdNs_;
  if (!rec.slow && rec.outcome == "ok") {
    rec.stagesJson.clear();
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[next_] = std::move(rec);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<FlightRecord> FlightRecorder::query(std::string_view tenant,
                                                std::size_t limit) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  // Oldest-first: once wrapped, next_ points at the oldest record.
  const std::size_t n = ring_.size();
  const std::size_t start = n < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    const FlightRecord& rec = ring_[(start + i) % n];
    if (!tenant.empty() && rec.tenant != tenant) {
      continue;
    }
    out.push_back(rec);
  }
  if (limit != 0 && out.size() > limit) {
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(limit));
  }
  return out;
}

std::string FlightRecorder::eventsJson(std::string_view tenant,
                                       std::size_t limit) const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const FlightRecord& rec : query(tenant, limit)) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"seq\":" << rec.seq << ",\"job_id\":" << rec.jobId
        << ",\"tenant\":\"" << jsonEscape(rec.tenant) << "\"";
    if (!rec.requestId.empty()) {
      out << ",\"request_id\":\"" << jsonEscape(rec.requestId) << "\"";
    }
    if (!rec.programId.empty()) {
      out << ",\"program_id\":\"" << jsonEscape(rec.programId) << "\"";
    }
    out << ",\"shots\":" << rec.shots
        << ",\"queue_wait_ns\":" << rec.queueWaitNs
        << ",\"exec_ns\":" << rec.execNs << ",\"total_ns\":" << rec.totalNs
        << ",\"outcome\":\"" << jsonEscape(rec.outcome) << "\"";
    if (!rec.errorCode.empty()) {
      out << ",\"error\":\"" << jsonEscape(rec.errorCode) << "\"";
    }
    if (!rec.cause.empty()) {
      out << ",\"cause\":\"" << jsonEscape(rec.cause) << "\"";
    }
    out << ",\"slow\":" << (rec.slow ? "true" : "false");
    if (!rec.stagesJson.empty()) {
      out << ",\"stages\":" << rec.stagesJson;
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

} // namespace qirkit::service
