#include "service/server.hpp"

#include "ir/context.hpp"
#include "ir/module.hpp"
#include "ir/parser.hpp"
#include "qasm/parser.hpp"
#include "qasm/qasm3.hpp"
#include "qir/exporter.hpp"
#include "service/prometheus.hpp"
#include "sim/statevector.hpp"
#include "support/cancel.hpp"
#include "support/telemetry/request_trace.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"
#include "vm/executor.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <sstream>

namespace qirkit::service {

namespace {

telemetry::Counter g_requests{"serve.requests"};
telemetry::Counter g_rejectedFrames{"serve.protocol.rejected_frames"};
telemetry::Counter g_jobsCompleted{"serve.jobs.completed"};
telemetry::Counter g_jobsFailed{"serve.jobs.failed"};
telemetry::Counter g_programHits{"serve.programs.hits"};
telemetry::Counter g_programMisses{"serve.programs.misses"};
telemetry::Counter g_programEvictions{"serve.programs.evictions"};
telemetry::Counter g_jobsExpired{"serve.jobs.expired"};
telemetry::Counter g_drainCancelled{"serve.drain.cancelled"};
telemetry::Counter g_cancelRequests{"serve.cancel.requests"};
telemetry::Counter g_memoryRejected{"serve.admission.memory_rejected"};
telemetry::Counter g_watchdogScans{"serve.watchdog.scans"};
telemetry::Counter g_watchdogFlagged{"serve.watchdog.flagged"};
telemetry::LatencyHistogram g_jobLatency{"serve.job.latency_ns"};
/// Queue-wait vs execute-time split of the job latency above; recorded
/// before the per-job after-snapshot so every submit response's metrics
/// delta carries its own wait/run samples.
telemetry::LatencyHistogram g_queueWait{"serve.queue.wait_ns"};
telemetry::LatencyHistogram g_execTime{"serve.exec.run_ns"};

/// Per-tenant outcome counters and latency families (bounded
/// cardinality: beyond kDefaultMaxLabels live tenants the
/// least-recently-updated label is evicted and counted — DESIGN 7f).
telemetry::LabeledCounter g_tenantCompleted{
    "serve.tenant.completed", telemetry::LabeledCounter::kDefaultMaxLabels,
    "tenant"};
telemetry::LabeledCounter g_tenantFailed{
    "serve.tenant.failed", telemetry::LabeledCounter::kDefaultMaxLabels,
    "tenant"};
telemetry::LabeledCounter g_tenantExpired{
    "serve.tenant.deadline_expired",
    telemetry::LabeledCounter::kDefaultMaxLabels, "tenant"};
/// SLO split: jobs that carried a deadline and finished inside it.
telemetry::LabeledCounter g_tenantDeadlineOk{
    "serve.tenant.deadline_ok", telemetry::LabeledCounter::kDefaultMaxLabels,
    "tenant"};
telemetry::LabeledCounter g_tenantRejected{
    "serve.tenant.rejected", telemetry::LabeledCounter::kDefaultMaxLabels,
    "tenant"};
/// Reject rate by admission cause ("queue-capacity", "tenant-pending",
/// "shot-ceiling", "rate-limit", "memory", "draining").
telemetry::LabeledCounter g_rejectByCause{
    "serve.reject.by_cause", telemetry::LabeledCounter::kDefaultMaxLabels,
    "cause"};
telemetry::LabeledHistogram g_tenantQueueWait{
    "serve.tenant.queue_wait_ns",
    telemetry::LabeledHistogram::kDefaultMaxLabels, "tenant"};
telemetry::LabeledHistogram g_tenantExec{
    "serve.tenant.exec_ns", telemetry::LabeledHistogram::kDefaultMaxLabels,
    "tenant"};

/// Frame-reject bookkeeping that must work with telemetry disabled: the
/// metrics endpoint reports these unconditionally.
std::atomic<std::uint64_t> g_rejectedFramesExact{0};
std::atomic<std::uint64_t> g_jobsCompletedExact{0};
std::atomic<std::uint64_t> g_jobsFailedExact{0};
std::atomic<std::uint64_t> g_jobsExpiredExact{0};
std::atomic<std::uint64_t> g_drainCancelledExact{0};
std::atomic<std::uint64_t> g_memoryRejectedExact{0};
std::atomic<std::uint64_t> g_watchdogFlaggedExact{0};

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Predicted register width of a parsed program: the entry point's
/// required_num_qubits attribute (stamped by both QASM frontends and QIR
/// exports). 0 = unknown — such programs bypass the memory guard and rely
/// on the StateVector allocation guard instead.
unsigned estimatedQubits(const ir::Module& module) {
  const ir::Function* entry = module.entryPoint();
  if (entry == nullptr) {
    return 0;
  }
  const std::string attr = entry->getAttribute("required_num_qubits");
  if (attr.empty()) {
    return 0;
  }
  return static_cast<unsigned>(std::strtoul(attr.c_str(), nullptr, 10));
}

/// Deadline responses carry the partial results: how far the batch got and
/// the histogram over the completed shots.
std::string deadlineExtrasJson(const vm::ShotBatchResult& batch) {
  std::ostringstream out;
  out << "\"completed_shots\":" << batch.completedShots
      << ",\"unstarted_shots\":" << batch.unstartedShots << ",\"histogram\":{";
  bool first = true;
  for (const auto& [bits, count] : batch.histogram) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << telemetry::jsonEscape(bits) << "\":" << count;
  }
  out << "}";
  return out.str();
}

/// Percentile summary of one histogram for the metrics verb's latency
/// section. Quantiles are bucket upper bounds (see LatencyHistogram).
std::string percentilesJson(const telemetry::LatencyHistogram& h) {
  std::ostringstream out;
  out << "{\"count\":" << h.count() << ",\"p50_ns\":" << h.quantileNs(0.5)
      << ",\"p95_ns\":" << h.quantileNs(0.95)
      << ",\"p99_ns\":" << h.quantileNs(0.99) << "}";
  return out.str();
}

bool looksLikeQasmText(std::string_view text) {
  return text.find("OPENQASM") != std::string_view::npos;
}

bool isQasm3Text(std::string_view text) {
  const auto pos = text.find("OPENQASM");
  return pos != std::string_view::npos &&
         text.substr(pos).rfind("OPENQASM 3", 0) == 0;
}

/// Write the whole buffer; MSG_NOSIGNAL so a vanished client costs an
/// error return, not a SIGPIPE. Returns false when the peer is gone.
bool writeAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), queue_(options_.queue),
      pool_(options_.poolThreads),
      flight_(options_.flightCapacity,
              options_.slowThresholdMs * 1'000'000ULL) {
  cache_.setCapacity(options_.cacheCapacity);
}

Server::~Server() {
  stop();
}

void Server::start() {
  if (options_.enableTelemetry) {
    telemetry::setEnabled(true);
  }
  if (options_.socketPath.empty()) {
    throw qirkit::Error(ErrorCode::Usage, "serve requires a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
    throw qirkit::Error(ErrorCode::Usage,
                        "socket path longer than " +
                            std::to_string(sizeof(addr.sun_path) - 1) +
                            " bytes: '" + options_.socketPath + "'");
  }
  std::memcpy(addr.sun_path, options_.socketPath.c_str(),
              options_.socketPath.size() + 1);

  // A stale socket file from a dead daemon would make bind fail forever;
  // reclaim it, but never delete something that is not a socket.
  struct stat st{};
  if (::lstat(options_.socketPath.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      throw qirkit::Error(ErrorCode::Io, "socket path '" + options_.socketPath +
                                             "' exists and is not a socket");
    }
    ::unlink(options_.socketPath.c_str());
  }

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw qirkit::Error(ErrorCode::Io,
                        std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw qirkit::Error(ErrorCode::Io, "cannot listen on '" +
                                           options_.socketPath + "': " + why);
  }

  startedNs_ = telemetry::nowNs();
  const std::size_t runners = std::max<std::size_t>(1, options_.runners);
  runnerThreads_.reserve(runners);
  for (std::size_t i = 0; i < runners; ++i) {
    runnerThreads_.emplace_back([this] { runnerLoop(); });
  }
  acceptThread_ = std::thread([this] { acceptLoop(); });
  watchdogThread_ = std::thread([this] { watchdogLoop(); });
}

void Server::run() {
  std::unique_lock lock(shutdownMutex_);
  // Polling wait: requestShutdown() may be invoked from a signal handler,
  // where notifying a condition variable is not async-signal-safe.
  while (!stopping_.load(std::memory_order_relaxed)) {
    shutdownCv_.wait_for(lock, std::chrono::milliseconds(100));
  }
  lock.unlock();
  stop();
}

void Server::requestShutdown() {
  stopping_.store(true, std::memory_order_relaxed);
}

void Server::stop() {
  {
    const std::lock_guard lock(shutdownMutex_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_relaxed);

  // Order matters: close admission first so queued jobs drain, join the
  // runners (fulfilling every pending submit future), and only then break
  // the connections those futures were answering.
  queue_.close();
  for (std::thread& runner : runnerThreads_) {
    runner.join();
  }
  runnerThreads_.clear();

  if (watchdogThread_.joinable()) {
    watchdogThread_.join();
  }
  if (acceptThread_.joinable()) {
    acceptThread_.join();
  }
  // The runners have fulfilled every submit future, but the connection
  // threads those futures woke may not have written their responses yet —
  // shutting the sockets down now would turn a drained job's result into
  // a torn connection. Wait for in-flight handlers to flush (bounded, in
  // case a client has stopped reading its socket).
  for (int i = 0;
       i < 5000 && busyRequests_.load(std::memory_order_acquire) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    const std::lock_guard lock(connectionsMutex_);
    for (auto& [fd, thread] : connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  while (true) {
    std::pair<int, std::thread> conn(-1, std::thread());
    {
      const std::lock_guard lock(connectionsMutex_);
      if (connections_.empty()) {
        break;
      }
      conn = std::move(connections_.front());
      connections_.pop_front();
    }
    conn.second.join();
    ::close(conn.first);
  }

  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(options_.socketPath.c_str());
  }
}

void Server::acceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd p{listenFd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, 100);
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    const std::lock_guard lock(connectionsMutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    connections_.emplace_back(
        std::piecewise_construct, std::forward_as_tuple(fd),
        std::forward_as_tuple([this, fd] { connectionLoop(fd); }));
  }
}

void Server::connectionLoop(int fd) {
  std::string buffer;
  char chunk[65536];
  // After an oversized frame is rejected, input is discarded up to the
  // next newline so the connection resynchronizes instead of tearing down.
  bool discarding = false;

  const auto respond = [&](const std::string& line) {
    return writeAll(fd, line + "\n");
  };
  const auto rejectFrame = [&](ErrorCode code, const std::string& message) {
    g_rejectedFrames.add();
    g_rejectedFramesExact.fetch_add(1, std::memory_order_relaxed);
    return respond(errorResponseJson(code, message));
  };

  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0 || (n < 0 && errno != EINTR)) {
      break;
    }
    if (n < 0) {
      continue;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));

    bool connectionAlive = true;
    while (connectionAlive) {
      const auto newline = buffer.find('\n');
      if (newline == std::string::npos) {
        if (!discarding && buffer.size() > options_.maxFrameBytes) {
          connectionAlive = rejectFrame(
              ErrorCode::Usage,
              "frame exceeds " + std::to_string(options_.maxFrameBytes) +
                  " bytes; dropping input until the next newline");
          discarding = true;
          buffer.clear();
        }
        break;
      }
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (discarding) {
        discarding = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (line.empty()) {
        continue;
      }
      if (line.size() > options_.maxFrameBytes) {
        connectionAlive = rejectFrame(
            ErrorCode::Usage,
            "frame of " + std::to_string(line.size()) + " bytes exceeds the " +
                std::to_string(options_.maxFrameBytes) + "-byte limit");
        continue;
      }
      g_requests.add();
      // Frame decoding and request handling fail differently: a frame
      // that is not valid JSON is a *protocol* reject (counted, like the
      // CLI's error[usage] for bad options); a well-formed frame whose
      // handling throws — including a program that fails to parse — is an
      // ordinary structured error. Both keep the connection alive.
      Request request;
      bool frameOk = false;
      try {
        request = parseRequest(line);
        frameOk = true;
      } catch (const qirkit::Error& e) {
        if (e.code() == ErrorCode::Parse) {
          connectionAlive = rejectFrame(e.code(), e.message());
        } else {
          connectionAlive = respond(errorResponseJson(e.code(), e.message()));
        }
      }
      if (!frameOk) {
        continue;
      }
      busyRequests_.fetch_add(1, std::memory_order_relaxed);
      std::string response;
      try {
        response = handleRequest(request);
      } catch (const qirkit::Error& e) {
        response = errorResponseJson(e.code(), e.message());
      } catch (const std::exception& e) {
        response = errorResponseJson(ErrorCode::Internal, e.what());
      }
      connectionAlive = respond(response);
      busyRequests_.fetch_sub(1, std::memory_order_release);
    }
    if (!connectionAlive) {
      break;
    }
  }
}

std::string Server::handleRequest(const Request& request) {
  switch (request.type) {
  case RequestType::Ping:
    return pingResponseJson();
  case RequestType::Metrics:
    return request.metrics.prometheus ? prometheusMetricsJson()
                                      : metricsJson();
  case RequestType::Events:
    return handleEvents(request.events);
  case RequestType::Shutdown:
    requestShutdown();
    return "{\"v\":" + std::to_string(kProtocolVersion) +
           ",\"ok\":true,\"type\":\"shutdown\"}";
  case RequestType::Cancel:
    return handleCancel(request.cancel);
  case RequestType::Submit:
    return handleSubmit(request.submit);
  }
  throw qirkit::Error(ErrorCode::Internal, "unhandled request type");
}

std::string Server::handleSubmit(const SubmitRequest& request) {
  // The request's trace context: born here, threaded through the queue
  // into the executor via ShotOptions, delivered back in the response's
  // "stages" array and the flight recorder.
  auto trace = std::make_shared<telemetry::RequestTrace>(request.tenant,
                                                         request.requestId);
  const std::uint64_t admissionT0 = telemetry::nowNs();
  std::shared_ptr<ProgramEntry> program = resolveProgram(request);

  auto active = std::make_shared<ActiveJob>();
  active->tenant = request.tenant;
  active->requestId = request.requestId;
  active->shots = request.shots;
  active->deadlineMs = request.deadlineMs;
  active->stateBytes =
      program->qubits == 0
          ? 0
          : sim::StateVector::predictedBytes(program->qubits,
                                             request.precision);
  active->admittedNs = qirkit::CancelToken::nowNs();
  active->cancel = std::make_shared<qirkit::CancelToken>();
  if (request.deadlineMs != 0) {
    // Armed from admission, so queue wait counts against the budget and
    // the job can expire while still pending (the queue TTL).
    active->cancel->setTimeoutNs(request.deadlineMs * 1'000'000ULL);
    active->deadlineNs = active->cancel->deadlineNs();
  }

  auto delivered = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = delivered->get_future();

  Job job;
  job.request = request;
  job.programId = program->id;
  job.program = program;
  job.deadlineNs = active->deadlineNs;
  job.cancel = active->cancel;
  job.trace = trace;
  job.active = active;
  job.deliver = [delivered](std::string response) {
    delivered->set_value(std::move(response));
  };
  bool admissionRecorded = false;
  try {
    // Register before the push: the runner may pop (and finish) the job
    // before push even returns, and the cancel verb / watchdog must be
    // able to see it for that whole window.
    registerActive(active);
    // Stage recorded before the push so a fast runner's "queue" stage
    // always lands after it; the push itself is a couple of map updates.
    trace->addStage("admission", admissionT0,
                    telemetry::nowNs() - admissionT0);
    admissionRecorded = true;
    try {
      queue_.push(std::move(job)); // throws AdmissionError on quota violations
    } catch (...) {
      unregisterActive(active);
      throw;
    }
  } catch (const AdmissionError& e) {
    if (!admissionRecorded) {
      trace->addStage("admission", admissionT0,
                      telemetry::nowNs() - admissionT0, "rejected");
    }
    g_tenantRejected.add(request.tenant);
    g_rejectByCause.add(e.cause().empty() ? "other" : e.cause());
    FlightRecord rec;
    rec.tenant = request.tenant;
    rec.requestId = request.requestId;
    rec.programId = program->id;
    rec.shots = request.shots;
    rec.totalNs = telemetry::nowNs() - admissionT0;
    rec.outcome = "rejected";
    rec.errorCode = errorCodeName(e.code());
    rec.cause = e.cause();
    rec.stagesJson = trace->stagesJson();
    flight_.record(std::move(rec));
    trace->emitChromeSpans();
    // Overload rejections carry the machine-readable retry hint; 0 means
    // the limit is static and a retry can never succeed, so no hint.
    return errorResponseJson(e.code(), e.message(),
                             e.retryAfterMs() == 0
                                 ? std::string()
                                 : "\"retry_after_ms\":" +
                                       std::to_string(e.retryAfterMs()));
  }
  std::string response = future.get();
  unregisterActive(active);
  return response;
}

std::string Server::handleCancel(const CancelRequest& request) {
  g_cancelRequests.add();
  bool found = false;
  {
    const std::lock_guard lock(activeMutex_);
    for (const std::shared_ptr<ActiveJob>& active : active_) {
      if (active->tenant == request.tenant && !active->requestId.empty() &&
          active->requestId == request.requestId) {
        active->cancel->cancel();
        found = true;
      }
    }
  }
  return cancelResponseJson(found);
}

void Server::registerActive(const std::shared_ptr<ActiveJob>& active) {
  const std::lock_guard lock(activeMutex_);
  const std::uint64_t budget = options_.memoryBudgetBytes;
  if (budget != 0 && active->stateBytes != 0) {
    if (active->stateBytes > budget) {
      g_memoryRejected.add();
      g_memoryRejectedExact.fetch_add(1, std::memory_order_relaxed);
      throw AdmissionError("predicted statevector footprint (" +
                               std::to_string(active->stateBytes) +
                               " bytes) exceeds the memory budget (" +
                               std::to_string(budget) + " bytes)",
                           0, "memory"); // can never fit; no retry hint
    }
    if (inFlightStateBytes_ + active->stateBytes > budget) {
      g_memoryRejected.add();
      g_memoryRejectedExact.fetch_add(1, std::memory_order_relaxed);
      throw AdmissionError("predicted statevector footprint (" +
                               std::to_string(active->stateBytes) +
                               " bytes) does not fit: " +
                               std::to_string(inFlightStateBytes_) +
                               " bytes already in flight against a " +
                               std::to_string(budget) + "-byte budget",
                           100, "memory");
    }
  }
  inFlightStateBytes_ += active->stateBytes;
  active_.push_back(active);
}

void Server::unregisterActive(const std::shared_ptr<ActiveJob>& active) {
  const std::lock_guard lock(activeMutex_);
  inFlightStateBytes_ -= active->stateBytes;
  active_.remove(active);
}

void Server::runnerLoop() {
  while (true) {
    std::optional<Job> job = queue_.pop();
    if (!job.has_value()) {
      return;
    }
    const bool draining = stopping_.load(std::memory_order_relaxed);
    if (job->cancel != nullptr && job->cancel->expired()) {
      // Queue TTL: the deadline ran out (or the cancel verb fired) while
      // the job was still pending — it never starts executing.
      g_jobsExpired.add();
      g_jobsExpiredExact.fetch_add(1, std::memory_order_relaxed);
      g_tenantExpired.add(job->request.tenant);
      const std::uint64_t waitNs = telemetry::nowNs() - job->enqueuedNs;
      if (job->trace != nullptr) {
        job->trace->addStage("queue", job->enqueuedNs, waitNs, "ttl-expired");
      }
      const auto active = std::static_pointer_cast<ActiveJob>(job->active);
      const bool watchdogHit =
          active != nullptr &&
          active->watchdogFlagged.load(std::memory_order_relaxed);
      const bool cancelled = job->cancel->cancelled();
      const std::string why =
          cancelled
              ? "job cancelled while pending"
              : "deadline of " + std::to_string(job->request.deadlineMs) +
                    "ms expired while the job was queued";
      std::string extras = "\"completed_shots\":0,\"unstarted_shots\":" +
                           std::to_string(job->request.shots);
      if (job->trace != nullptr) {
        extras += ",\"stages\":" + job->trace->stagesJson();
      }
      recordFlight(*job, waitNs, 0, "error", errorCodeName(ErrorCode::Deadline),
                   watchdogHit ? "watchdog"
                   : cancelled ? "cancel"
                               : "queue-ttl");
      job->deliver(errorResponseJson(ErrorCode::Deadline, why, extras));
    } else if (draining) {
      // Graceful drain: already-running jobs flush, still-queued jobs get
      // an explicit cancelled disposition instead of executing into
      // shutdown. Each disposition is logged so an operator can account
      // for every job the SIGTERM displaced.
      g_drainCancelled.add();
      g_drainCancelledExact.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "qirkit serve: drain: job %llu (tenant '%s') cancelled "
                   "before execution\n",
                   static_cast<unsigned long long>(job->id),
                   job->request.tenant.c_str());
      const std::uint64_t waitNs = telemetry::nowNs() - job->enqueuedNs;
      if (job->trace != nullptr) {
        job->trace->addStage("queue", job->enqueuedNs, waitNs, "drain");
      }
      std::string extras = "\"completed_shots\":0,\"unstarted_shots\":" +
                           std::to_string(job->request.shots);
      if (job->trace != nullptr) {
        extras += ",\"stages\":" + job->trace->stagesJson();
      }
      recordFlight(*job, waitNs, 0, "error", errorCodeName(ErrorCode::Deadline),
                   "drain");
      job->deliver(errorResponseJson(
          ErrorCode::Deadline,
          "service is draining; job cancelled before execution", extras));
    } else {
      executeJob(*job);
    }
    queue_.onJobFinished(job->request.tenant);
  }
}

void Server::watchdogLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (options_.watchdogFactor == 0) {
      continue;
    }
    g_watchdogScans.add();
    const std::uint64_t now = qirkit::CancelToken::nowNs();
    const std::lock_guard lock(activeMutex_);
    for (const std::shared_ptr<ActiveJob>& active : active_) {
      if (active->deadlineNs == 0 || active->watchdogFlagged) {
        continue;
      }
      const std::uint64_t budgetNs =
          active->deadlineMs * 1'000'000ULL * options_.watchdogFactor;
      if (now - active->admittedNs <= budgetNs) {
        continue;
      }
      // The job outlived N x its own deadline: either a runner is stuck
      // inside it or its cooperative probes stopped firing. Flag once and
      // force the token as a backstop.
      active->watchdogFlagged = true;
      active->cancel->cancel();
      g_watchdogFlagged.add();
      g_watchdogFlaggedExact.fetch_add(1, std::memory_order_relaxed);
      const telemetry::trace::Span span("serve.watchdog.flag");
      std::fprintf(stderr,
                   "qirkit serve: watchdog: job (tenant '%s'%s%s%s) exceeded "
                   "%ux its %llums deadline; forcing cancellation\n",
                   active->tenant.c_str(),
                   active->requestId.empty() ? "" : ", request_id '",
                   active->requestId.c_str(),
                   active->requestId.empty() ? "" : "'",
                   options_.watchdogFactor,
                   static_cast<unsigned long long>(active->deadlineMs));
    }
  }
}

void Server::executeJob(Job& job) {
  const auto& program = *std::static_pointer_cast<ProgramEntry>(job.program);
  const auto active = std::static_pointer_cast<ActiveJob>(job.active);
  telemetry::RequestTrace* const trace = job.trace.get();
  const std::uint64_t startNs = telemetry::nowNs();
  const std::uint64_t queueWaitNs = startNs - job.enqueuedNs;
  if (trace != nullptr) {
    trace->addStage("queue", job.enqueuedNs, queueWaitNs);
  }
  const telemetry::Snapshot before = telemetry::snapshot();

  vm::ShotOptions opts;
  opts.shots = job.request.shots;
  opts.seed = job.seed;
  opts.engine = job.request.engine;
  opts.execMode = job.request.execMode;
  opts.fusion = job.request.fusion;
  opts.dispatch = job.request.dispatch;
  opts.precision = job.request.precision;
  opts.forceF32 = job.request.forceF32;
  opts.pool = &pool_;
  opts.cache = &cache_;
  opts.cancel = job.cancel.get(); // null when the job set no deadline/tag
  opts.requestTrace = trace;      // compile/analyze/execute stage marks

  // Cause attribution for deadline outcomes: the watchdog flag beats the
  // cancel flag (the watchdog cancels through the same token).
  const auto deadlineCause = [&]() -> const char* {
    if (active != nullptr &&
        active->watchdogFlagged.load(std::memory_order_relaxed)) {
      return "watchdog";
    }
    if (job.cancel != nullptr && job.cancel->cancelled()) {
      return "cancel";
    }
    return "deadline";
  };

  SubmitResponse response;
  response.programId = job.programId;
  response.jobId = job.id;
  response.shots = job.request.shots;
  response.seed = job.seed;
  try {
    response.batch = vm::runShots(*program.module, opts);
  } catch (const std::exception& e) {
    const ClassifiedError failure = classifyException(e);
    g_jobsFailed.add();
    g_jobsFailedExact.fetch_add(1, std::memory_order_relaxed);
    g_tenantFailed.add(job.request.tenant);
    std::string extras = failure.code == ErrorCode::Deadline
                             ? "\"completed_shots\":0,\"unstarted_shots\":" +
                                   std::to_string(job.request.shots)
                             : std::string();
    if (trace != nullptr) {
      extras += extras.empty() ? "\"stages\":" : ",\"stages\":";
      extras += trace->stagesJson();
    }
    recordFlight(job, queueWaitNs, telemetry::nowNs() - startNs, "error",
                 errorCodeName(failure.code),
                 failure.code == ErrorCode::Deadline ? deadlineCause() : "");
    job.deliver(errorResponseJson(failure.code, failure.message, extras));
    return;
  }
  if (response.batch.deadlineExceeded) {
    // Partial-results contract: the batch stopped at a shot boundary, so
    // the histogram covers exactly the completed shots. Surface it in the
    // structured error instead of pretending the job succeeded.
    g_jobsExpired.add();
    g_jobsExpiredExact.fetch_add(1, std::memory_order_relaxed);
    g_tenantExpired.add(job.request.tenant);
    const std::string why =
        job.cancel != nullptr && job.cancel->cancelled()
            ? "job cancelled after " +
                  std::to_string(response.batch.completedShots) + " of " +
                  std::to_string(job.request.shots) + " shots"
            : "deadline of " + std::to_string(job.request.deadlineMs) +
                  "ms exceeded after " +
                  std::to_string(response.batch.completedShots) + " of " +
                  std::to_string(job.request.shots) + " shots";
    std::string extras = deadlineExtrasJson(response.batch);
    if (trace != nullptr) {
      extras += ",\"stages\":" + trace->stagesJson();
    }
    recordFlight(job, queueWaitNs, telemetry::nowNs() - startNs, "error",
                 errorCodeName(ErrorCode::Deadline), deadlineCause());
    job.deliver(errorResponseJson(ErrorCode::Deadline, why, extras));
    return;
  }
  const std::uint64_t endNs = telemetry::nowNs();
  const std::uint64_t execNs = endNs - startNs;
  // Latency probes fire before the after-snapshot so this response's own
  // metrics delta carries the job's queue-wait and execution samples.
  g_jobLatency.record(endNs - job.enqueuedNs);
  g_queueWait.record(queueWaitNs);
  g_execTime.record(execNs);
  g_tenantCompleted.add(job.request.tenant);
  g_tenantQueueWait.record(job.request.tenant, queueWaitNs);
  g_tenantExec.record(job.request.tenant, execNs);
  if (job.request.deadlineMs != 0) {
    g_tenantDeadlineOk.add(job.request.tenant);
  }
  response.queueWaitNs = queueWaitNs;
  response.execNs = execNs;
  response.metricsDeltaJson =
      telemetry::snapshotJson(telemetry::diff(before, telemetry::snapshot()));
  g_jobsCompleted.add();
  g_jobsCompletedExact.fetch_add(1, std::memory_order_relaxed);
  if (trace != nullptr) {
    response.stagesJson = trace->stagesJson();
  }
  recordFlight(job, queueWaitNs, execNs, "ok", "", "");
  job.deliver(submitResponseJson(response));
}

void Server::recordFlight(const Job& job, std::uint64_t queueWaitNs,
                          std::uint64_t execNs, const char* outcome,
                          const char* errorCode, std::string cause) {
  FlightRecord rec;
  rec.jobId = job.id;
  rec.tenant = job.request.tenant;
  rec.requestId = job.request.requestId;
  rec.programId = job.programId;
  rec.shots = job.request.shots;
  rec.queueWaitNs = queueWaitNs;
  rec.execNs = execNs;
  rec.totalNs = telemetry::nowNs() - job.enqueuedNs;
  rec.outcome = outcome;
  rec.errorCode = errorCode;
  rec.cause = std::move(cause);
  if (job.trace != nullptr) {
    rec.stagesJson = job.trace->stagesJson();
  }
  flight_.record(std::move(rec));
  if (job.trace != nullptr) {
    job.trace->emitChromeSpans(); // one relaxed load when tracing is off
  }
}

std::string Server::handleEvents(const EventsRequest& request) {
  std::ostringstream out;
  out << "{\"v\":" << kProtocolVersion << ",\"ok\":true,\"type\":\"events\""
      << ",\"recorded\":" << flight_.recorded()
      << ",\"capacity\":" << flight_.capacity()
      << ",\"slow_threshold_ms\":" << options_.slowThresholdMs
      << ",\"events\":"
      << flight_.eventsJson(request.tenant,
                            static_cast<std::size_t>(request.limit))
      << "}";
  return out.str();
}

std::string Server::prometheusMetricsJson() {
  return "{\"v\":" + std::to_string(kProtocolVersion) +
         ",\"ok\":true,\"type\":\"metrics\",\"format\":\"prometheus\"," +
         "\"body\":\"" + telemetry::jsonEscape(prometheusText()) + "\"}";
}

std::shared_ptr<Server::ProgramEntry>
Server::resolveProgram(const SubmitRequest& request) {
  if (!request.programRef.empty()) {
    const std::lock_guard lock(programsMutex_);
    const auto it = programs_.find(request.programRef);
    if (it == programs_.end()) {
      throw qirkit::Error(ErrorCode::Usage,
                          "unknown program_ref '" + request.programRef +
                              "' (evicted or never submitted); resubmit the "
                              "program text");
    }
    it->second->lastUse = ++programTick_;
    g_programHits.add();
    return it->second;
  }

  const std::string id = hex16(fnv1a(request.program));
  {
    const std::lock_guard lock(programsMutex_);
    const auto it = programs_.find(id);
    if (it != programs_.end()) {
      it->second->lastUse = ++programTick_;
      g_programHits.add();
      return it->second;
    }
  }

  // Parse outside the lock: a slow parse must not stall other tenants'
  // lookups. A racing duplicate parse of the same text is harmless — the
  // loser's entry simply wins the second insert below.
  auto entry = std::make_shared<ProgramEntry>();
  entry->id = id;
  entry->context = std::make_unique<ir::Context>();
  const std::string& text = request.program;
  if (looksLikeQasmText(text)) {
    if (isQasm3Text(text)) {
      entry->module = qasm::compileQasm3(*entry->context, text);
    } else {
      const circuit::Circuit c = qasm::parse(text);
      qir::ExportOptions options;
      options.addressing = qir::Addressing::Static;
      entry->module = qir::exportCircuit(*entry->context, c, options);
    }
  } else {
    entry->module = ir::parseModule(*entry->context, text);
  }
  entry->qubits = estimatedQubits(*entry->module);
  g_programMisses.add();

  const std::lock_guard lock(programsMutex_);
  entry->lastUse = ++programTick_;
  auto [it, inserted] = programs_.emplace(id, entry);
  if (!inserted) {
    it->second->lastUse = programTick_;
    return it->second;
  }
  while (programs_.size() > options_.programCapacity) {
    auto victim = programs_.end();
    for (auto pit = programs_.begin(); pit != programs_.end(); ++pit) {
      if (pit == it) {
        continue; // never evict what we just inserted
      }
      if (victim == programs_.end() ||
          pit->second->lastUse < victim->second->lastUse) {
        victim = pit;
      }
    }
    if (victim == programs_.end()) {
      break;
    }
    programs_.erase(victim);
    g_programEvictions.add();
  }
  return entry;
}

std::string Server::metricsJson() {
  const QueueStats queue = queue_.stats();
  const vm::CompileCache::Stats cache = cache_.stats();
  const std::uint64_t lookups = cache.hits + cache.coalesced + cache.misses;
  const double hitRate =
      lookups == 0 ? 0.0
                   : static_cast<double>(cache.hits + cache.coalesced) /
                         static_cast<double>(lookups);
  char hitRateBuf[32];
  std::snprintf(hitRateBuf, sizeof(hitRateBuf), "%.4f", hitRate);

  std::size_t programCount = 0;
  {
    const std::lock_guard lock(programsMutex_);
    programCount = programs_.size();
  }
  std::uint64_t inFlightBytes = 0;
  std::size_t activeJobs = 0;
  {
    const std::lock_guard lock(activeMutex_);
    inFlightBytes = inFlightStateBytes_;
    activeJobs = active_.size();
  }

  std::ostringstream out;
  out << "{\"v\":" << kProtocolVersion << ",\"ok\":true,\"type\":\"metrics\""
      << ",\"uptime_ns\":" << (telemetry::nowNs() - startedNs_)
      << ",\"queue\":{\"depth\":" << queue.depth
      << ",\"capacity\":" << queue_.limits().capacity
      << ",\"admitted\":" << queue.admitted
      << ",\"rejected\":" << queue.rejected
      << ",\"rate_limited\":" << queue.rateLimited
      << ",\"finished\":" << queue.finished << ",\"tenants\":{";
  bool first = true;
  for (const QueueStats::Tenant& tenant : queue.tenants) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << telemetry::jsonEscape(tenant.name)
        << "\":{\"pending\":" << tenant.pending
        << ",\"admitted\":" << tenant.admitted << "}";
  }
  out << "}},\"cache\":{\"hits\":" << cache.hits
      << ",\"coalesced\":" << cache.coalesced
      << ",\"misses\":" << cache.misses
      << ",\"evictions\":" << cache.evictions << ",\"size\":" << cache_.size()
      << ",\"capacity\":" << cache_.capacity() << ",\"hit_rate\":" << hitRateBuf
      << "},\"programs\":{\"size\":" << programCount
      << ",\"capacity\":" << options_.programCapacity
      << "},\"pool\":{\"workers\":" << pool_.size()
      << "},\"runners\":" << runnerThreads_.size()
      << ",\"jobs\":{\"completed\":"
      << g_jobsCompletedExact.load(std::memory_order_relaxed)
      << ",\"failed\":" << g_jobsFailedExact.load(std::memory_order_relaxed)
      << ",\"expired\":" << g_jobsExpiredExact.load(std::memory_order_relaxed)
      << ",\"drained\":"
      << g_drainCancelledExact.load(std::memory_order_relaxed)
      << "},\"memory\":{\"in_flight_bytes\":" << inFlightBytes
      << ",\"budget_bytes\":" << options_.memoryBudgetBytes
      << ",\"active_jobs\":" << activeJobs
      << ",\"rejected\":"
      << g_memoryRejectedExact.load(std::memory_order_relaxed)
      << "},\"watchdog\":{\"factor\":" << options_.watchdogFactor
      << ",\"flagged\":"
      << g_watchdogFlaggedExact.load(std::memory_order_relaxed)
      << "},\"latency\":{\"job\":" << percentilesJson(g_jobLatency)
      << ",\"queue_wait\":" << percentilesJson(g_queueWait)
      << ",\"exec\":" << percentilesJson(g_execTime)
      << "},\"flight\":{\"capacity\":" << flight_.capacity()
      << ",\"recorded\":" << flight_.recorded()
      << ",\"slow_threshold_ms\":" << options_.slowThresholdMs
      << "},\"protocol\":{\"rejected_frames\":"
      << g_rejectedFramesExact.load(std::memory_order_relaxed)
      << "},\"telemetry\":" << telemetry::snapshotJson(telemetry::snapshot())
      << "}";
  return out.str();
}

} // namespace qirkit::service
