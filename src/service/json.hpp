/// \file json.hpp
/// A minimal JSON value + recursive-descent parser for the service's
/// line-delimited protocol. Scope is exactly what the protocol needs:
/// objects, arrays, strings (with escapes), numbers, booleans, null; a
/// depth limit instead of a schema. Rendering goes the other way through
/// telemetry::jsonEscape and ostringstream composition in protocol.cpp —
/// this type only carries *parsed* requests.
#pragma once

#include "support/error.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace qirkit::service::json {

/// Maximum nesting depth accepted by parse(); deeper input is a parse
/// error, not a stack overflow.
inline constexpr std::size_t kMaxDepth = 64;

class Value {
public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Object, Array };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  /// String payload; for numbers, the literal spelling (so 64-bit
  /// integers survive the double round-trip — see asU64).
  std::string string;
  std::map<std::string, Value> object; // sorted: deterministic iteration
  std::vector<Value> array;

  [[nodiscard]] bool isNull() const noexcept { return kind == Kind::Null; }
  [[nodiscard]] bool isBool() const noexcept { return kind == Kind::Bool; }
  [[nodiscard]] bool isNumber() const noexcept { return kind == Kind::Number; }
  [[nodiscard]] bool isString() const noexcept { return kind == Kind::String; }
  [[nodiscard]] bool isObject() const noexcept { return kind == Kind::Object; }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// The member as a non-negative integer; throws Error(code, ...) naming
  /// \p key when present but not a non-negative integral number.
  [[nodiscard]] std::uint64_t asU64(std::string_view key,
                                    ErrorCode code = ErrorCode::Usage) const;
};

/// Parse one JSON document (the full \p text, trailing whitespace aside).
/// Throws qirkit::Error(ErrorCode::Parse) with a byte offset on malformed
/// input.
[[nodiscard]] Value parse(std::string_view text);

} // namespace qirkit::service::json
