#include "vm/bytecode.hpp"

#include "ir/instruction.hpp"

#include <sstream>

namespace qirkit::vm {

const char* opName(Op op) noexcept {
  switch (op) {
  case Op::Nop: return "nop";
  case Op::Mov: return "mov";
  case Op::IntBin: return "ibin";
  case Op::FloatBin: return "fbin";
  case Op::ICmp: return "icmp";
  case Op::ICmpPtr: return "icmp.ptr";
  case Op::FCmp: return "fcmp";
  case Op::ZExt: return "zext";
  case Op::Trunc: return "trunc";
  case Op::PtrToInt: return "ptrtoint";
  case Op::IntToPtr: return "inttoptr";
  case Op::SiToF: return "sitofp";
  case Op::UiToF: return "uitofp";
  case Op::FToSi: return "fptosi";
  case Op::FToUi: return "fptoui";
  case Op::Select: return "select";
  case Op::Alloca: return "alloca";
  case Op::LoadInt: return "load.i";
  case Op::LoadDouble: return "load.d";
  case Op::LoadPtr: return "load.p";
  case Op::StoreInt: return "store.i";
  case Op::StoreDouble: return "store.d";
  case Op::StorePtr: return "store.p";
  case Op::Jmp: return "jmp";
  case Op::JmpIf: return "jmp.if";
  case Op::SwitchI: return "switch";
  case Op::Ret: return "ret";
  case Op::RetVoid: return "ret.void";
  case Op::PushArg: return "push.arg";
  case Op::Call: return "call";
  case Op::CallExtern: return "call.ext";
  case Op::Trap: return "trap";
  case Op::Fused1: return "fused1";
  case Op::Fused2: return "fused2";
  case Op::FusedDiag: return "fused.diag";
  case Op::FusedSweep: return "fused.sweep";
  case Op::CmpBr: return "cmp.br";
  case Op::BinStore: return "bin.store";
  case Op::LoadBin: return "load.bin";
  case Op::PushCall: return "push.call";
  case Op::Ext: return "ext";
  }
  return "?";
}

const char* dispatchModeName(DispatchMode mode) noexcept {
  return mode == DispatchMode::Threaded ? "threaded" : "switch";
}

DispatchMode defaultDispatchMode() noexcept {
  return threadedDispatchAvailable() ? DispatchMode::Threaded
                                     : DispatchMode::Switch;
}

std::size_t BytecodeModule::instructionCount() const noexcept {
  std::size_t n = 0;
  for (const CompiledFunction& fn : functions) {
    n += fn.code.size();
  }
  return n;
}

std::string BytecodeModule::disassemble() const {
  std::ostringstream out;
  for (std::size_t f = 0; f < functions.size(); ++f) {
    const CompiledFunction& fn = functions[f];
    out << "func[" << f << "] @" << fn.name << " args=" << fn.numArgs
        << " regs=" << fn.numRegs << " consts=" << fn.constants.size() << "\n";
    for (std::size_t i = 0; i < fn.code.size(); ++i) {
      const Inst& in = fn.code[i];
      out << "  " << i << ": " << opName(in.op);
      switch (in.op) {
      case Op::IntBin:
      case Op::FloatBin:
      case Op::BinStore:
        out << '.' << ir::opcodeName(static_cast<ir::Opcode>(in.sub));
        break;
      case Op::ICmp:
      case Op::ICmpPtr:
      case Op::CmpBr:
        out << '.' << ir::icmpPredName(static_cast<ir::ICmpPred>(in.sub));
        break;
      case Op::FCmp:
        out << '.' << ir::fcmpPredName(static_cast<ir::FCmpPred>(in.sub));
        break;
      default:
        break;
      }
      out << " a=" << in.a << " b=" << in.b << " c=" << in.c << " d=" << in.d;
      if (in.op == Op::CallExtern && in.b < externNames.size()) {
        out << " ; @" << externNames[in.b];
      }
      if (in.op == Op::Call && in.b < functions.size()) {
        out << " ; @" << functions[in.b].name;
      }
      if ((in.op == Op::Fused1 || in.op == Op::Fused2 ||
           in.op == Op::FusedDiag) &&
          in.a < fn.fusedBlocks.size()) {
        const interp::FusedBlock& block = fn.fusedBlocks[in.a];
        out << " ; " << block.sourceGates << " gates on";
        for (const std::uint64_t q : block.qubits) {
          out << " q" << q;
        }
      }
      if (in.op == Op::FusedSweep && in.a < fn.fusedSweeps.size()) {
        const FusedSweepRun& run = fn.fusedSweeps[in.a];
        out << " ; " << run.blockCount << " blocks ["
            << run.firstBlock << ".." << (run.firstBlock + run.blockCount - 1)
            << "], " << run.totalGates << " gates";
      }
      if ((in.flags & kStep) != 0) {
        out << " [step]";
      }
      out << "\n";
    }
    for (std::size_t t = 0; t < fn.switchTables.size(); ++t) {
      const SwitchTable& table = fn.switchTables[t];
      out << "  table[" << t << "] default=" << table.defaultTarget;
      for (const auto& [value, target] : table.cases) {
        out << " " << value << "->" << target;
      }
      out << "\n";
    }
  }
  return out.str();
}

} // namespace qirkit::vm
