/// \file shot_analysis.hpp
/// Terminal-measurement classification for the shot executor's sampling
/// fast path. A module is **measurement-terminal** when re-simulating it
/// per shot is provably equivalent to simulating it once and sampling all
/// shots from the final state:
///
///  * no branch/switch condition, call argument, store, or return value
///    transitively depends on a measurement result (read_result /
///    result_equal) — classical control flow never observes an outcome;
///  * no qubit is operated on (gate or reset) after it has been measured
///    on any CFG path — the deferred joint Z-measurement then commutes
///    with everything that follows it;
///  * resets only touch provably fresh qubits (a reset of |0> is a no-op;
///    any other reset creates a mixture a single statevector cannot hold).
///
/// The analysis is a conservative forward dataflow over the entry
/// function's CFG: qubit arguments are abstracted to *tokens* (static
/// address constants, allocation call sites, array elements) and the
/// measured/touched token sets are propagated to a fixpoint. Anything the
/// abstraction cannot prove — unknown qubit operands after a measurement,
/// quantum operations behind internal calls, unknown externals — degrades
/// the verdict to feedback-dependent, never the other way around, so the
/// sampling path is only ever taken when it is sound.
#pragma once

#include "ir/module.hpp"

#include <string>

namespace qirkit::vm {

enum class ShotProfile : std::uint8_t {
  /// All measurements are terminal: simulate once, sample N shots.
  Terminal,
  /// Some gate, branch, or reset may depend on (or follow) a measurement:
  /// every shot must be re-simulated.
  FeedbackDependent,
};

[[nodiscard]] const char* shotProfileName(ShotProfile profile) noexcept;

struct ShotAnalysis {
  ShotProfile profile = ShotProfile::FeedbackDependent;
  /// Human-readable justification when the verdict is FeedbackDependent.
  std::string reason;
};

/// Classify \p module for the shot executor. Never throws; a module the
/// analysis cannot understand (no entry point, unknown externals) is
/// reported as FeedbackDependent with a reason.
[[nodiscard]] ShotAnalysis analyzeShotProfile(const ir::Module& module);

} // namespace qirkit::vm
