#include "vm/cache.hpp"

#include "ir/printer.hpp"
#include "support/faultinject.hpp"
#include "support/telemetry/telemetry.hpp"
#include "vm/compiler.hpp"

#include <algorithm>

namespace qirkit::vm {

namespace {

telemetry::Counter g_cacheHits{"vm.cache.hits"};
telemetry::Counter g_cacheMisses{"vm.cache.misses"};
telemetry::Counter g_cacheEvictions{"vm.cache.evictions"};
telemetry::Counter g_cacheCoalesced{"vm.cache.coalesced"};

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

} // namespace

std::shared_ptr<const BytecodeModule>
CompileCache::getOrCompile(const ir::Module& module, const CompileOptions& options) {
  fault::probe(fault::Site::CompileCache);
  std::string text = ir::printModule(module);
  if (!options.fuseGates) {
    // Fold the option into the content key so fused and unfused compiles
    // of the same program never alias.
    text += "\n; compile-option: fusion=off";
  }
  // Same for the dispatch mode and the superinstruction peephole: both
  // change the module (recorded mode, code shape), so a flipped
  // --dispatch can never reuse a stale compiled function.
  if (options.dispatch != defaultDispatchMode()) {
    text += std::string("\n; compile-option: dispatch=") +
            dispatchModeName(options.dispatch);
  }
  if (options.superinstructions) {
    text += "\n; compile-option: superinstr=on";
  }
  const std::uint64_t hash = fnv1a(text);

  std::promise<std::shared_ptr<const BytecodeModule>> promise;
  CompiledFuture joined;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(hash);
    if (it != entries_.end()) {
      for (Entry& entry : it->second) {
        if (entry.text == text) {
          ++stats_.hits;
          g_cacheHits.add();
          entry.lastUse = ++tick_;
          return entry.compiled;
        }
      }
    }
    // Single-flight: join a compile already in progress for this key
    // rather than duplicating it.
    const auto inflightIt = inflight_.find(hash);
    if (inflightIt != inflight_.end()) {
      for (const InFlight& flight : inflightIt->second) {
        if (flight.text == text) {
          ++stats_.coalesced;
          g_cacheCoalesced.add();
          joined = flight.future;
          break;
        }
      }
    }
    if (!joined.valid()) {
      inflight_[hash].push_back(InFlight{text, promise.get_future().share()});
    }
  }
  if (joined.valid()) {
    // Blocks until the owning thread finishes; rethrows its compile error,
    // mirroring what compiling ourselves would have raised.
    return joined.get();
  }

  // Compile outside the lock — compilation is pure and may be slow; the
  // in-flight registration above keeps it from ever running twice.
  std::shared_ptr<const BytecodeModule> compiled;
  try {
    compiled = compileModule(module, options);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      auto& flights = inflight_[hash];
      std::erase_if(flights, [&](const InFlight& f) { return f.text == text; });
      if (flights.empty()) {
        inflight_.erase(hash);
      }
    }
    // Wake the joiners with the same failure; nothing is cached, so the
    // next request retries the compile.
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& flights = inflight_[hash];
    std::erase_if(flights, [&](const InFlight& f) { return f.text == text; });
    if (flights.empty()) {
      inflight_.erase(hash);
    }
    ++stats_.misses;
    g_cacheMisses.add();
    while (sizeLocked() >= capacity_) {
      evictLRULocked();
    }
    entries_[hash].push_back(Entry{text, compiled, ++tick_});
  }
  promise.set_value(compiled);
  return compiled;
}

void CompileCache::evictLRULocked() {
  auto victimMap = entries_.end();
  std::size_t victimIndex = 0;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (it->second[i].lastUse < oldest) {
        oldest = it->second[i].lastUse;
        victimMap = it;
        victimIndex = i;
      }
    }
  }
  if (victimMap == entries_.end()) {
    return;
  }
  victimMap->second.erase(victimMap->second.begin() +
                          static_cast<std::ptrdiff_t>(victimIndex));
  if (victimMap->second.empty()) {
    entries_.erase(victimMap);
  }
  ++stats_.evictions;
  g_cacheEvictions.add();
}

CompileCache::Stats CompileCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompileCache::sizeLocked() const {
  std::size_t n = 0;
  for (const auto& [hash, chain] : entries_) {
    n += chain.size();
  }
  return n;
}

std::size_t CompileCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sizeLocked();
}

std::size_t CompileCache::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void CompileCache::setCapacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (sizeLocked() > capacity_) {
    evictLRULocked();
  }
}

void CompileCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = {};
  tick_ = 0;
}

CompileCache& CompileCache::global() {
  static CompileCache instance;
  return instance;
}

} // namespace qirkit::vm
