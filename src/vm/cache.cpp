#include "vm/cache.hpp"

#include "ir/printer.hpp"
#include "support/faultinject.hpp"
#include "vm/compiler.hpp"

namespace qirkit::vm {

namespace {

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

} // namespace

std::shared_ptr<const BytecodeModule> CompileCache::getOrCompile(const ir::Module& module) {
  fault::probe(fault::Site::CompileCache);
  const std::string text = ir::printModule(module);
  const std::uint64_t hash = fnv1a(text);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(hash);
    if (it != entries_.end()) {
      for (const Entry& entry : it->second) {
        if (entry.text == text) {
          ++stats_.hits;
          return entry.compiled;
        }
      }
    }
  }
  // Compile outside the lock: compilation is pure, and a rare duplicate
  // compile of the same program is cheaper than serializing all misses.
  std::shared_ptr<const BytecodeModule> compiled = compileModule(module);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_[hash]) {
    if (entry.text == text) { // another thread won the race
      ++stats_.hits;
      return entry.compiled;
    }
  }
  ++stats_.misses;
  entries_[hash].push_back(Entry{text, compiled});
  return compiled;
}

CompileCache::Stats CompileCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompileCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [hash, chain] : entries_) {
    n += chain.size();
  }
  return n;
}

void CompileCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = {};
}

CompileCache& CompileCache::global() {
  static CompileCache instance;
  return instance;
}

} // namespace qirkit::vm
