#include "vm/compiler.hpp"

#include "vm/fusion.hpp"

#include "ir/constant.hpp"
#include "ir/printer.hpp"
#include "support/faultinject.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"

#include <limits>
#include <string_view>

namespace qirkit::vm {

using namespace qirkit::ir;
using interp::Memory;
using interp::RtValue;

namespace {

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Predicted runtime addresses of the module's globals. Must mirror the
/// engines' materialization order and Memory::allocate's deterministic
/// 8-byte-aligned bump allocation exactly.
std::map<const GlobalVariable*, std::uint64_t>
predictGlobalAddresses(const Module& module) {
  std::map<const GlobalVariable*, std::uint64_t> addresses;
  std::uint64_t used = 0;
  for (const auto& global : module.globals()) {
    const std::uint64_t aligned = (used + 7) & ~std::uint64_t{7};
    addresses[global.get()] = Memory::kBase + aligned;
    used = aligned + std::max<std::uint64_t>(1, global->initializer().size());
  }
  return addresses;
}

class FunctionCompiler {
public:
  FunctionCompiler(const Function& fn, BytecodeModule& out,
                   const std::map<const Function*, std::uint32_t>& functionIndex,
                   const std::map<const GlobalVariable*, std::uint64_t>& globalAddresses)
      : fn_(fn), out_(out), functionIndex_(functionIndex),
        globalAddresses_(globalAddresses) {}

  CompiledFunction compile() {
    compiled_.name = fn_.name();
    compiled_.numArgs = fn_.numArgs();
    compiled_.returnsValue = !fn_.returnType()->isVoid();
    collectConstants();
    allocateRegisters();
    for (const auto& block : fn_.blocks()) {
      emitBlock(*block);
    }
    applyFixups();
    compiled_.numRegs = nextReg_;
    return std::move(compiled_);
  }

private:
  static constexpr std::uint16_t kNoFlags = 0;

  // -- register allocation ---------------------------------------------------

  /// Constant pool slots sit directly after the arguments so operands can
  /// be addressed uniformly as frame registers.
  void collectConstants() {
    constBase_ = fn_.numArgs();
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : block->instructions()) {
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
          const Value* v = inst->operand(i);
          if (v->kind() == Value::Kind::BasicBlock ||
              v->kind() == Value::Kind::Function) {
            continue;
          }
          if ((v->isConstant() || v->kind() == Value::Kind::GlobalVariable) &&
              constSlot_.find(v) == constSlot_.end()) {
            constSlot_[v] = static_cast<std::uint32_t>(compiled_.constants.size());
            compiled_.constants.push_back(evalConstant(v));
          }
        }
      }
    }
    nextReg_ = constBase_ + static_cast<std::uint32_t>(compiled_.constants.size());
  }

  RtValue evalConstant(const Value* v) const {
    switch (v->kind()) {
    case Value::Kind::ConstantInt:
      return RtValue::makeInt(static_cast<const ConstantInt*>(v)->value());
    case Value::Kind::ConstantFP:
      return RtValue::makeDouble(static_cast<const ConstantFP*>(v)->value());
    case Value::Kind::ConstantPointerNull:
      return RtValue::makePtr(0);
    case Value::Kind::ConstantIntToPtr:
      return RtValue::makePtr(static_cast<const ConstantIntToPtr*>(v)->address());
    case Value::Kind::Undef:
      return v->type()->isDouble() ? RtValue::makeDouble(0.0)
             : v->type()->isPointer() ? RtValue::makePtr(0)
                                      : RtValue::makeInt(0);
    case Value::Kind::GlobalVariable: {
      const auto it = globalAddresses_.find(static_cast<const GlobalVariable*>(v));
      if (it == globalAddresses_.end()) {
        throw CompileError("reference to unmaterialized global @" + v->name());
      }
      return RtValue::makePtr(it->second);
    }
    default:
      throw CompileError("cannot evaluate operand of kind " +
                         std::to_string(static_cast<int>(v->kind())));
    }
  }

  void allocateRegisters() {
    for (const auto& block : fn_.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Phi) {
          valueReg_[inst.get()] = nextReg_++;
          phiStageReg_[inst.get()] = nextReg_++;
          continue;
        }
        if (!inst->type()->isVoid() && !inst->isTerminator() &&
            inst->op() != Opcode::Store) {
          valueReg_[inst.get()] = nextReg_++;
        }
      }
    }
  }

  std::uint32_t regOf(const Value* v) const {
    if (const auto* arg = dynamic_cast<const Argument*>(v)) {
      return arg->index();
    }
    if (v->kind() == Value::Kind::Instruction) {
      const auto it = valueReg_.find(static_cast<const Instruction*>(v));
      if (it == valueReg_.end()) {
        throw CompileError("use of value without a register (verifier not run?)");
      }
      return it->second;
    }
    const auto it = constSlot_.find(v);
    if (it == constSlot_.end()) {
      throw CompileError("operand constant missing from pool");
    }
    return constBase_ + it->second;
  }

  std::uint32_t dstOf(const Instruction* inst) const {
    const auto it = valueReg_.find(inst);
    return it == valueReg_.end() ? kNoReg : it->second;
  }

  // -- emission --------------------------------------------------------------

  std::size_t emit(Op op, std::uint8_t sub, std::uint16_t flags, std::uint32_t a,
                   std::uint32_t b = 0, std::uint32_t c = 0, std::uint32_t d = 0) {
    compiled_.code.push_back({op, sub, flags, a, b, c, d});
    return compiled_.code.size() - 1;
  }

  void emitBlock(const BasicBlock& block) {
    blockStart_[&block] = static_cast<std::uint32_t>(compiled_.code.size());
    for (const auto& inst : block.instructions()) {
      if (inst->op() != Opcode::Phi) {
        emitInstruction(*inst);
      }
    }
  }

  void emitInstruction(const Instruction& inst) {
    const Opcode op = inst.op();
    if (isIntBinaryOp(op)) {
      emit(Op::IntBin, static_cast<std::uint8_t>(op), kStep, dstOf(&inst),
           regOf(inst.operand(0)), regOf(inst.operand(1)), inst.type()->bits());
      return;
    }
    if (isFloatBinaryOp(op)) {
      emit(Op::FloatBin, static_cast<std::uint8_t>(op), kStep, dstOf(&inst),
           regOf(inst.operand(0)), regOf(inst.operand(1)));
      return;
    }
    switch (op) {
    case Opcode::Ret:
      if (inst.numOperands() == 1) {
        emit(Op::Ret, 0, kStep, regOf(inst.operand(0)));
      } else {
        emit(Op::RetVoid, 0, kStep, 0);
      }
      return;
    case Opcode::Br:
      if (inst.isConditionalBr()) {
        emitConditionalBranch(inst);
      } else {
        // Inline edge moves, then a flagged jump: one counted step, as in
        // the interpreter's Br handling.
        emitPhiMoves(inst.parent(), inst.successor(0));
        const std::size_t jmp = emit(Op::Jmp, 0, kStep, 0);
        addFixup(jmp, 0, inst.successor(0));
      }
      return;
    case Opcode::Switch:
      emitSwitch(inst);
      return;
    case Opcode::Unreachable:
      emit(Op::Trap, 0, kStep, 0);
      return;
    case Opcode::Alloca: {
      const std::uint64_t size = inst.allocatedType()->storeSize();
      if (size > std::numeric_limits<std::uint32_t>::max()) {
        throw CompileError("alloca larger than 4 GiB");
      }
      emit(Op::Alloca, 0, kStep, dstOf(&inst), 0, 0,
           static_cast<std::uint32_t>(size));
      return;
    }
    case Opcode::Load: {
      const Type* type = inst.type();
      if (type->isDouble()) {
        emit(Op::LoadDouble, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      } else if (type->isPointer()) {
        emit(Op::LoadPtr, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      } else {
        emit(Op::LoadInt, 0, kStep, dstOf(&inst), regOf(inst.operand(0)), 0,
             static_cast<std::uint32_t>(type->storeSize()));
      }
      return;
    }
    case Opcode::Store: {
      const Type* type = inst.operand(0)->type();
      const std::uint32_t value = regOf(inst.operand(0));
      const std::uint32_t address = regOf(inst.operand(1));
      if (type->isDouble()) {
        emit(Op::StoreDouble, 0, kStep, kNoReg, value, address);
      } else if (type->isPointer()) {
        emit(Op::StorePtr, 0, kStep, kNoReg, value, address);
      } else {
        emit(Op::StoreInt, 0, kStep, kNoReg, value, address,
             static_cast<std::uint32_t>(type->storeSize()));
      }
      return;
    }
    case Opcode::ICmp: {
      const Value* lhs = inst.operand(0);
      if (lhs->type()->isPointer()) {
        emit(Op::ICmpPtr, static_cast<std::uint8_t>(inst.icmpPred()), kStep,
             dstOf(&inst), regOf(lhs), regOf(inst.operand(1)));
      } else {
        emit(Op::ICmp, static_cast<std::uint8_t>(inst.icmpPred()), kStep,
             dstOf(&inst), regOf(lhs), regOf(inst.operand(1)), lhs->type()->bits());
      }
      return;
    }
    case Opcode::FCmp:
      emit(Op::FCmp, static_cast<std::uint8_t>(inst.fcmpPred()), kStep,
           dstOf(&inst), regOf(inst.operand(0)), regOf(inst.operand(1)));
      return;
    case Opcode::ZExt:
      emit(Op::ZExt, 0, kStep, dstOf(&inst), regOf(inst.operand(0)), 0,
           inst.operand(0)->type()->bits());
      return;
    case Opcode::SExt:
    case Opcode::Bitcast:
      // Values are stored canonically sign-extended; both are plain moves,
      // exactly as in the interpreter.
      emit(Op::Mov, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      return;
    case Opcode::Trunc:
      emit(Op::Trunc, 0, kStep, dstOf(&inst), regOf(inst.operand(0)), 0,
           inst.type()->bits());
      return;
    case Opcode::PtrToInt:
      emit(Op::PtrToInt, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      return;
    case Opcode::IntToPtr:
      emit(Op::IntToPtr, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      return;
    case Opcode::SIToFP:
      emit(Op::SiToF, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      return;
    case Opcode::UIToFP:
      emit(Op::UiToF, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      return;
    case Opcode::FPToSI:
      emit(Op::FToSi, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      return;
    case Opcode::FPToUI:
      emit(Op::FToUi, 0, kStep, dstOf(&inst), regOf(inst.operand(0)));
      return;
    case Opcode::Select:
      emit(Op::Select, 0, kStep, dstOf(&inst), regOf(inst.operand(0)),
           regOf(inst.operand(1)), regOf(inst.operand(2)));
      return;
    case Opcode::Call:
      emitCall(inst);
      return;
    default:
      throw CompileError(std::string("cannot compile opcode ") + opcodeName(op));
    }
  }

  void emitCall(const Instruction& inst) {
    const Function* callee = inst.callee();
    if (callee == nullptr) {
      throw CompileError("call without a callee");
    }
    for (unsigned i = 0; i < inst.numOperands(); ++i) {
      emit(Op::PushArg, 0, kNoFlags, regOf(inst.operand(i)));
    }
    const std::uint32_t dst = dstOf(&inst);
    if (callee->isDeclaration()) {
      emit(Op::CallExtern, 0, kStep, dst, externSlot(callee->name()),
           inst.numOperands());
    } else {
      const auto it = functionIndex_.find(callee);
      if (it == functionIndex_.end()) {
        throw CompileError("call to uncompiled function @" + callee->name());
      }
      emit(Op::Call, 0, kStep, dst, it->second, inst.numOperands());
    }
  }

  std::uint32_t externSlot(const std::string& name) {
    for (std::uint32_t slot = 0; slot < out_.externNames.size(); ++slot) {
      if (out_.externNames[slot] == name) {
        return slot;
      }
    }
    out_.externNames.push_back(name);
    return static_cast<std::uint32_t>(out_.externNames.size() - 1);
  }

  // -- control flow ----------------------------------------------------------

  /// Emit the staged parallel moves realizing \p succ's phi nodes for the
  /// edge pred→succ. All incoming values are read into staging registers
  /// before any phi register is written, preserving the simultaneous-
  /// assignment semantics (a phi may feed another phi of the same block).
  void emitPhiMoves(const BasicBlock* pred, const BasicBlock* succ) {
    const std::vector<Instruction*> phis = succ->phis();
    for (const Instruction* phi : phis) {
      const Value* incoming = phi->incomingValueFor(pred);
      if (incoming == nullptr) {
        throw CompileError("phi has no incoming value for edge");
      }
      emit(Op::Mov, 0, kNoFlags, phiStageReg_.at(phi), regOf(incoming));
    }
    for (const Instruction* phi : phis) {
      emit(Op::Mov, 0, kNoFlags, valueReg_.at(phi), phiStageReg_.at(phi));
    }
  }

  void emitConditionalBranch(const Instruction& inst) {
    const std::uint32_t cond = regOf(inst.brCondition());
    const std::size_t branch = emit(Op::JmpIf, 0, kStep, cond);
    resolveEdgeTargets(branch, inst, {{1, inst.successor(0)}, {2, inst.successor(1)}});
  }

  void emitSwitch(const Instruction& inst) {
    const std::uint32_t cond = regOf(inst.operand(0));
    const std::uint32_t tableIndex =
        static_cast<std::uint32_t>(compiled_.switchTables.size());
    compiled_.switchTables.emplace_back();
    SwitchTable& table = compiled_.switchTables.back();
    for (unsigned i = 0; i < inst.numSwitchCases(); ++i) {
      table.cases.emplace_back(inst.switchCaseValue(i)->value(), 0);
    }
    const std::size_t branch = emit(Op::SwitchI, 0, kStep, cond, tableIndex);
    // Resolve default + every case destination; edges to phi-carrying
    // blocks go through a stub emitted after the switch.
    std::map<const BasicBlock*, std::uint32_t> stubs;
    const BasicBlock* pred = inst.parent();
    const auto targetFor = [&](const BasicBlock* succ) -> std::uint32_t {
      if (succ->phis().empty()) {
        return kNoReg; // patched by block fixup
      }
      const auto it = stubs.find(succ);
      if (it != stubs.end()) {
        return it->second;
      }
      const auto offset = static_cast<std::uint32_t>(compiled_.code.size());
      emitPhiMoves(pred, succ);
      const std::size_t jmp = emit(Op::Jmp, 0, kNoFlags, 0);
      addFixup(jmp, 0, succ);
      stubs[succ] = offset;
      return offset;
    };
    (void)branch;
    const BasicBlock* defaultDest = inst.successor(0);
    const std::uint32_t defaultTarget = targetFor(defaultDest);
    if (defaultTarget == kNoReg) {
      tableFixups_.push_back({tableIndex, -1, defaultDest});
    } else {
      table.defaultTarget = defaultTarget;
    }
    for (unsigned i = 0; i < inst.numSwitchCases(); ++i) {
      const BasicBlock* dest = inst.switchCaseDest(i);
      const std::uint32_t target = targetFor(dest);
      if (target == kNoReg) {
        tableFixups_.push_back({tableIndex, static_cast<int>(i), dest});
      } else {
        table.cases[i].second = target;
      }
    }
  }

  /// Patch the fields of a two-way branch: direct block targets where the
  /// successor has no phis, stubs (edge moves + jump) otherwise.
  void resolveEdgeTargets(std::size_t branch, const Instruction& inst,
                          std::initializer_list<std::pair<int, const BasicBlock*>> edges) {
    std::map<const BasicBlock*, std::uint32_t> stubs;
    for (const auto& [field, succ] : edges) {
      if (succ->phis().empty()) {
        addFixup(branch, field, succ);
        continue;
      }
      auto it = stubs.find(succ);
      if (it == stubs.end()) {
        const auto offset = static_cast<std::uint32_t>(compiled_.code.size());
        emitPhiMoves(inst.parent(), succ);
        const std::size_t jmp = emit(Op::Jmp, 0, kNoFlags, 0);
        addFixup(jmp, 0, succ);
        it = stubs.emplace(succ, offset).first;
      }
      setField(branch, field, it->second);
    }
  }

  void addFixup(std::size_t inst, int field, const BasicBlock* target) {
    codeFixups_.push_back({inst, field, target});
  }

  void setField(std::size_t inst, int field, std::uint32_t value) {
    Inst& in = compiled_.code[inst];
    (field == 0 ? in.a : field == 1 ? in.b : in.c) = value;
  }

  void applyFixups() {
    const auto startOf = [this](const BasicBlock* block) {
      const auto it = blockStart_.find(block);
      if (it == blockStart_.end()) {
        throw CompileError("branch to unemitted block");
      }
      return it->second;
    };
    for (const auto& fixup : codeFixups_) {
      setField(fixup.inst, fixup.field, startOf(fixup.target));
    }
    for (const auto& fixup : tableFixups_) {
      SwitchTable& table = compiled_.switchTables[fixup.table];
      if (fixup.caseIndex < 0) {
        table.defaultTarget = startOf(fixup.target);
      } else {
        table.cases[static_cast<std::size_t>(fixup.caseIndex)].second =
            startOf(fixup.target);
      }
    }
  }

  struct CodeFixup {
    std::size_t inst;
    int field; // 0 = a, 1 = b, 2 = c
    const BasicBlock* target;
  };
  struct TableFixup {
    std::uint32_t table;
    int caseIndex; // -1 = default
    const BasicBlock* target;
  };

  const Function& fn_;
  BytecodeModule& out_;
  const std::map<const Function*, std::uint32_t>& functionIndex_;
  const std::map<const GlobalVariable*, std::uint64_t>& globalAddresses_;

  CompiledFunction compiled_;
  std::uint32_t constBase_ = 0;
  std::uint32_t nextReg_ = 0;
  std::map<const Value*, std::uint32_t> constSlot_;
  std::map<const Instruction*, std::uint32_t> valueReg_;
  std::map<const Instruction*, std::uint32_t> phiStageReg_;
  std::map<const BasicBlock*, std::uint32_t> blockStart_;
  std::vector<CodeFixup> codeFixups_;
  std::vector<TableFixup> tableFixups_;
};

} // namespace

namespace {
telemetry::Counter g_compileCalls{"vm.compile.calls"};
telemetry::Counter g_compileNs{"vm.compile.ns"};
telemetry::Counter g_fusionOps{"sim.fusion.ops_fused"};
telemetry::Counter g_fusionBlocks{"sim.fusion.blocks"};
telemetry::Counter g_fusionSweepsSaved{"sim.fusion.sweeps_saved"};
telemetry::Counter g_fusionSweepRuns{"sim.fusion.sweep_runs"};
telemetry::Counter g_compileNopsRemoved{"vm.compile.nops_removed"};
telemetry::Counter g_compileSuperinstr{"vm.compile.superinstr"};
} // namespace

std::shared_ptr<const BytecodeModule> compileModule(const ir::Module& module,
                                                    const CompileOptions& options) {
  fault::probe(fault::Site::BytecodeCompile);
  const telemetry::trace::Span span("vm.compile");
  const telemetry::ScopedTimer timer(g_compileNs, &g_compileCalls);
  auto out = std::make_shared<BytecodeModule>();

  std::map<const Function*, std::uint32_t> functionIndex;
  for (const auto& fn : module.functions()) {
    if (!fn->isDeclaration()) {
      functionIndex[fn.get()] = static_cast<std::uint32_t>(functionIndex.size());
    }
  }
  const std::map<const GlobalVariable*, std::uint64_t> globalAddresses =
      predictGlobalAddresses(module);

  for (const auto& global : module.globals()) {
    out->globalInits.push_back(global->initializer());
  }
  for (const auto& fn : module.functions()) {
    if (fn->isDeclaration()) {
      continue;
    }
    FunctionCompiler compiler(*fn, *out, functionIndex, globalAddresses);
    out->functions.push_back(compiler.compile());
    out->functionIndexByName[fn->name()] =
        static_cast<std::uint32_t>(out->functions.size() - 1);
  }

  const Function* entry = module.entryPoint();
  if (entry == nullptr) {
    entry = module.getFunction("main");
  }
  if (entry != nullptr && !entry->isDeclaration()) {
    out->entryIndex = static_cast<int>(functionIndex.at(entry));
  }
  if (options.fuseGates) {
    const telemetry::trace::Span fuseSpan("compile.fuse");
    for (CompiledFunction& fn : out->functions) {
      const FusionStats stats = fuseGates(fn, out->externNames);
      g_fusionOps.add(stats.fusedOps);
      g_fusionBlocks.add(stats.blocks);
      g_fusionSweepsSaved.add(stats.sweepsSaved());
      g_fusionSweepRuns.add(planFusedSweeps(fn));
      // Both fusion stages pad replaced runs with Nops to keep offsets
      // stable; compact them away so the padding never reaches the
      // dispatch loop (it used to inflate vm.dispatch.data per shot).
      g_compileNopsRemoved.add(compactCode(fn));
    }
  }
  if (options.superinstructions) {
    const telemetry::trace::Span superSpan("compile.superinstr");
    for (CompiledFunction& fn : out->functions) {
      g_compileSuperinstr.add(fuseSuperinstructions(fn).total());
    }
  }
  out->dispatch = options.dispatch;
  out->sourceHash = fnv1a(ir::printModule(module));
  return out;
}

} // namespace qirkit::vm
