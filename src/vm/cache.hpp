/// \file cache.hpp
/// Content-addressed cache of compiled bytecode. The key is the printed
/// textual form of the module (hashed with FNV-1a 64; the stored text is
/// compared on hash hits so collisions cannot alias programs). One
/// process-wide instance makes repeated runs of the same program — across
/// shots, worker threads, and CLI subcommands — compile exactly once.
#pragma once

#include "ir/module.hpp"
#include "vm/bytecode.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace qirkit::vm {

class CompileCache {
public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Look up \p module by content; compile and insert on miss. Thread-safe.
  /// The returned module is immutable and outlives the cache entry.
  std::shared_ptr<const BytecodeModule> getOrCompile(const ir::Module& module);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// The process-wide instance used by the CLI and the shot executor.
  static CompileCache& global();

private:
  struct Entry {
    std::string text; // full printed module, for collision safety
    std::shared_ptr<const BytecodeModule> compiled;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  Stats stats_;
};

} // namespace qirkit::vm
