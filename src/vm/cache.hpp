/// \file cache.hpp
/// Content-addressed cache of compiled bytecode. The key is the printed
/// textual form of the module (hashed with FNV-1a 64; the stored text is
/// compared on hash hits so collisions cannot alias programs). One
/// process-wide instance makes repeated runs of the same program — across
/// shots, worker threads, and CLI subcommands — compile exactly once; the
/// service gives each daemon its own instance shared by every tenant
/// (ShotOptions::cache injects it into the executor).
///
/// Concurrency: lookups and insertions are mutex-guarded; compilation runs
/// outside the lock with *single-flight* deduplication — the first thread
/// to miss on a key registers an in-flight compile, and every concurrent
/// requester of the same key blocks on its future instead of compiling the
/// module again. N tenants submitting the same program therefore cost one
/// compile, not N (Stats::coalesced counts the joiners). A failed compile
/// propagates its exception to every joiner and leaves no entry behind, so
/// a later request retries from scratch.
///
/// The cache is bounded: once `capacity()` entries are resident, inserting
/// a new program evicts the least-recently-used entry (handed-out
/// shared_ptrs stay valid — eviction only drops the cache's reference).
/// Hits, misses, coalesced joins, and evictions are reported both in Stats
/// and through the telemetry counters vm.cache.{hits,misses,coalesced,
/// evictions}.
#pragma once

#include "ir/module.hpp"
#include "vm/bytecode.hpp"
#include "vm/compiler.hpp"

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace qirkit::vm {

class CompileCache {
public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Requests that joined another thread's in-flight compile of the same
    /// key instead of compiling (single-flight deduplication).
    std::uint64_t coalesced = 0;
  };

  /// Default resident-entry bound of the process-wide cache.
  static constexpr std::size_t kDefaultCapacity = 128;

  /// Look up \p module by content; compile and insert on miss. Thread-safe;
  /// concurrent misses on the same key compile once (see file comment).
  /// The returned module is immutable and outlives the cache entry.
  /// Non-default \p options become part of the cache key (as an appended
  /// pseudo-comment), so the same program compiled with and without fusion
  /// occupies distinct entries instead of aliasing.
  std::shared_ptr<const BytecodeModule>
  getOrCompile(const ir::Module& module, const CompileOptions& options = {});

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  /// Shrink/grow the resident bound (>= 1); shrinking evicts LRU entries
  /// immediately.
  void setCapacity(std::size_t capacity);
  void clear();

  /// The process-wide instance used by the CLI and the shot executor.
  static CompileCache& global();

private:
  using CompiledFuture =
      std::shared_future<std::shared_ptr<const BytecodeModule>>;

  struct Entry {
    std::string text; // full printed module, for collision safety
    std::shared_ptr<const BytecodeModule> compiled;
    std::uint64_t lastUse = 0; // tick of the most recent hit/insert
  };

  /// One compile in progress: joiners block on the future while the owner
  /// compiles outside the lock.
  struct InFlight {
    std::string text;
    CompiledFuture future;
  };

  void evictLRULocked();
  [[nodiscard]] std::size_t sizeLocked() const;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  std::unordered_map<std::uint64_t, std::vector<InFlight>> inflight_;
  Stats stats_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t tick_ = 0;
};

} // namespace qirkit::vm
