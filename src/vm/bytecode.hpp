/// \file bytecode.hpp
/// A flat, register-based bytecode for the IR subset — the compile-once/
/// execute-many counterpart to the tree-walking interpreter (the paper's
/// `lli` analog). Lowering resolves, at compile time, everything the
/// interpreter re-derives per instruction per shot:
///  * SSA values become dense register indices (no per-value map lookups),
///  * block successors become instruction offsets (no Value-graph chasing),
///  * phi nodes become staged parallel moves on the incoming edge,
///  * `__quantum__*` callees become runtime-dispatch slot indices
///    (no name lookups in the hot loop),
///  * constants become a per-function pool copied into the frame at entry.
///
/// The design follows dynamic-translation systems (compact linear IR,
/// translate once, run many): block structure is erased, semantics are
/// preserved bit-for-bit against the interpreter (differentially tested).
#pragma once

#include "interp/abi.hpp"
#include "interp/fused.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qirkit::vm {

/// Dense VM opcodes. Operand meanings are documented per opcode; `r[x]`
/// is frame register x, `sub` carries a source opcode / predicate, and
/// `d` carries an immediate (bit width, byte count, size, or a fourth
/// register for Select).
enum class Op : std::uint8_t {
  Nop,
  Mov,         // r[a] = r[b]
  IntBin,      // r[a].i = evalIntBinOp(sub, bits=d, r[b].i, r[c].i); traps on div-by-0
  FloatBin,    // r[a].d = evalFloatBinOp(sub, r[b].d, r[c].d)
  ICmp,        // r[a].i = evalICmp(sub, bits=d, r[b].i, r[c].i)
  ICmpPtr,     // r[a].i = evalICmp(sub, 64, (i64)r[b].p, (i64)r[c].p)
  FCmp,        // r[a].i = evalFCmp(sub, r[b].d, r[c].d)
  ZExt,        // r[a].i = r[b].i zero-extended from d source bits
  Trunc,       // r[a].i = r[b].i truncated to d bits, then sign-extended
  PtrToInt,    // r[a].i = (i64)r[b].p
  IntToPtr,    // r[a].p = (u64)r[b].i
  SiToF,       // r[a].d = (double)r[b].i
  UiToF,       // r[a].d = (double)(u64)r[b].i
  FToSi,       // r[a].i = (i64)r[b].d
  FToUi,       // r[a].i = (i64)(u64)r[b].d
  Select,      // r[a] = r[b].i != 0 ? r[c] : r[d]
  Alloca,      // r[a].p = memory.allocate(d)
  LoadInt,     // r[a].i = memory.loadInt(r[b].p, d bytes, sign-extended)
  LoadDouble,  // r[a].d = memory[r[b].p]
  LoadPtr,     // r[a].p = memory[r[b].p]
  StoreInt,    // memory.storeInt(r[c].p, r[b].i, d bytes)
  StoreDouble, // memory[r[c].p] = r[b].d
  StorePtr,    // memory[r[c].p] = r[b].p
  Jmp,         // pc = a
  JmpIf,       // pc = r[a].i != 0 ? b : c
  SwitchI,     // pc = switchTables[b] dispatched on r[a].i
  Ret,         // return r[a]
  RetVoid,     // return void
  PushArg,     // argument stack += r[a]
  Call,        // r[a] = functions[b](last c pushed args); a == kNoReg: void
  CallExtern,  // r[a] = externSlots[b](last c pushed args)
  Trap,        // throw TrapError("executed 'unreachable'")
  // Fused quantum ops (gate-fusion pass, fusion.hpp): a = index into
  // CompiledFunction::fusedBlocks, b = number of folded source gates.
  // Each accounts for b source instructions (steps, stats, fault probes)
  // so fused and unfused execution stay bit-compatible.
  Fused1,      // apply fusedBlocks[a]: 2x2 unitary on one qubit
  Fused2,      // apply fusedBlocks[a]: 4x4 unitary on a two-qubit window
  FusedDiag,   // apply fusedBlocks[a]: diagonal phases on up to 6 qubits
  // Sweep fusion (second fusion stage): a = index into
  // CompiledFunction::fusedSweeps, b = total folded source gates. Stands
  // in for fusedSweeps[a].blockCount consecutive Fused* instructions and
  // accounts for every source gate of every member block.
  FusedSweep,
  // Superinstructions (fuseSuperinstructions, fusion.hpp): hot opcode
  // pairs mined after gate fusion + Nop compaction. Each occupies the
  // replaced pair's span — the head instruction plus Op::Ext extension
  // slots that carry the second sub-op's operands and flags and are
  // consumed as immediates, never dispatched. Each sub-op keeps its own
  // step/stat/tally accounting, so superinstruction execution is
  // bit-compatible with the unfused pair.
  CmpBr,    // ICmp + JmpIf: r[a] = icmp(sub, bits=d, r[b], r[c]);
            // ext = {a=trueTarget, b=falseTarget, flags=JmpIf flags}
  BinStore, // IntBin + StoreInt: r[a] = ibin(sub, bits=d, r[b], r[c]);
            // memory.storeInt(r[ext.c], r[a], ext.d bytes)
  LoadBin,  // LoadInt + IntBin: r[a] = load(r[b], d bytes);
            // r[ext.a] = ibin(ext.sub, bits=ext.d, r[a], r[ext.c])
  PushCall, // PushArg x c: pushes r[a], then r[slot.a] of the c-1
            // following Ext slots; falls through to the untouched
            // Call/CallExtern that consumes them
  Ext,      // extension slot of a superinstruction; dispatching it is a
            // compiler bug and traps
};

/// Number of opcodes (the dispatch tables' extent).
inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::Ext) + 1;

[[nodiscard]] const char* opName(Op op) noexcept;

/// Which dispatch loop the VM runs a compiled module with. Switch is the
/// portable reference loop (~40-case opcode switch); Threaded is the
/// token-threaded computed-goto loop built under QIRKIT_THREADED_DISPATCH
/// (GNU toolchains). The mode is a *compile* option — it participates in
/// the compile-cache key, and the CLI's --dispatch=switch also pins the
/// reference code shape (no superinstructions) — so a flipped flag can
/// never reuse a stale compiled function.
enum class DispatchMode : std::uint8_t { Switch, Threaded };

[[nodiscard]] const char* dispatchModeName(DispatchMode mode) noexcept;

/// True when this build carries the computed-goto loop
/// (QIRKIT_THREADED_DISPATCH=ON and a GNU-compatible compiler). When
/// false, Threaded-mode modules execute on the switch loop — the two are
/// bit-compatible, so the fallback is silent.
[[nodiscard]] bool threadedDispatchAvailable() noexcept;

/// The build's preferred dispatch mode: Threaded where available.
[[nodiscard]] DispatchMode defaultDispatchMode() noexcept;

/// Register index meaning "no destination" (void calls).
inline constexpr std::uint32_t kNoReg = 0xFFFFFFFFU;

/// Instruction flags.
/// kStep marks the one VM instruction that accounts for a source IR
/// instruction: it counts toward the step budget and the executed-
/// instruction statistic, exactly mirroring the interpreter (which counts
/// every non-phi IR instruction and executes phi moves for free). Lowering
/// artifacts — phi staging moves, edge stubs, PushArg, constant setup —
/// carry no flag, so both engines reject a runaway program at the
/// *identical* source instruction.
inline constexpr std::uint16_t kStep = 1U << 0;

/// A fixed-width VM instruction (24 bytes).
struct Inst {
  Op op = Op::Nop;
  std::uint8_t sub = 0;    // ir::Opcode or predicate, per opcode
  std::uint16_t flags = 0; // kStep
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t d = 0;
};

/// One sweep planned by planFusedSweeps (fusion.hpp): a run of
/// consecutive fused instructions whose blocks sit contiguously in
/// CompiledFunction::fusedBlocks, collapsed into one Op::FusedSweep.
struct FusedSweepRun {
  std::uint32_t firstBlock = 0;
  std::uint32_t blockCount = 0;
  std::uint32_t totalGates = 0;
};

/// Jump table of one `switch` instruction: case values are matched in
/// declaration order (first match wins, as in the interpreter).
struct SwitchTable {
  std::uint32_t defaultTarget = 0;
  std::vector<std::pair<std::int64_t, std::uint32_t>> cases;
};

/// One compiled function. The frame layout is
///   [0, numArgs)                        arguments
///   [numArgs, numArgs + #constants)     constant pool, copied at entry
///   [.., numRegs)                       temporaries (zeroed at entry)
struct CompiledFunction {
  std::string name;
  std::uint32_t numArgs = 0;
  std::uint32_t numRegs = 0;
  bool returnsValue = false;
  std::vector<interp::RtValue> constants;
  std::vector<Inst> code;
  std::vector<SwitchTable> switchTables;
  /// Precomposed gate runs referenced by Fused1/Fused2/FusedDiag. A fused
  /// instruction replaces the first instruction of its source run; the
  /// remainder become Nops, so every code offset (jump target) survives.
  std::vector<interp::FusedBlock> fusedBlocks;
  /// Planned sweeps referenced by Op::FusedSweep: blockCount consecutive
  /// fusedBlocks entries starting at firstBlock, applied in one
  /// chunk-blocked pass by hosts that support it. totalGates is the sum
  /// of the members' sourceGates — the step/stats credit the sweep
  /// instruction accounts for.
  std::vector<FusedSweepRun> fusedSweeps;
};

/// A compiled module: every defined function, the extern-slot table
/// (pre-resolved `__quantum__*`/host callees, dispatched by index at run
/// time), and the global-variable images replayed into fresh execution
/// memory per shot. Immutable after compilation — safe to share across
/// shots, threads, and CLI invocations within a process (the compile
/// cache hands out shared_ptrs to it).
struct BytecodeModule {
  std::vector<CompiledFunction> functions;
  std::map<std::string, std::uint32_t> functionIndexByName;
  std::vector<std::string> externNames;  // slot -> declared callee name
  std::vector<std::string> globalInits;  // initializer bytes, in module order
  int entryIndex = -1;                   // "entry_point" attr, else @main
  std::uint64_t sourceHash = 0;          // FNV-1a of the printed module
  /// The dispatch loop this module was compiled for (CompileOptions).
  DispatchMode dispatch = DispatchMode::Switch;

  [[nodiscard]] std::size_t instructionCount() const noexcept;

  /// Human-readable listing (for tests and debugging).
  [[nodiscard]] std::string disassemble() const;
};

} // namespace qirkit::vm
