/// \file vm.hpp
/// The bytecode execution engine: runs a BytecodeModule in a tight
/// dispatch loop against the same Runtime ABI (RtValue / Memory /
/// ExternalRegistry) the tree-walking interpreter uses. One Vm holds the
/// mutable execution state (memory, frames, extern bindings, step
/// budget); the compiled module it runs is immutable and shared.
///
/// Semantics are bit-for-bit the interpreter's — same trap messages,
/// same step accounting (see kStep in bytecode.hpp), same deterministic
/// memory layout — so the two engines are differentially testable and
/// interchangeable behind qirkit run --engine=.
#pragma once

#include "interp/interpreter.hpp"
#include "vm/bytecode.hpp"

#include <memory>
#include <span>
#include <string_view>

namespace qirkit {
class CancelToken;
} // namespace qirkit

namespace qirkit::vm {

/// How many step-counted instructions may retire between cancellation
/// probes in the dispatch loops. Even an *armed* token is only consulted
/// (one relaxed load + sometimes a clock read) once per stride, keeping
/// the hot path's cost independent of whether a deadline is set.
inline constexpr std::uint64_t kCancelStrideSteps = 1024;

/// Executes compiled bytecode. Bind externals exactly as with an
/// Interpreter (QuantumRuntime::bind works on either engine); call
/// reset() between shots to replay globals into fresh memory while
/// keeping bindings and the compiled module.
class Vm : public interp::ExternalRegistry {
public:
  explicit Vm(std::shared_ptr<const BytecodeModule> module);

  /// Run function \p name with \p args; returns its value (Void kind for
  /// void functions). Resets the step counter, not memory.
  interp::RtValue run(std::string_view name, std::span<const interp::RtValue> args = {});

  /// Run the module's entry point (the "entry_point"-attributed function,
  /// else @main). Traps if the module has neither.
  interp::RtValue runEntryPoint();

  /// Fresh execution memory with globals re-materialized; statistics and
  /// extern bindings survive. The deterministic bump allocator guarantees
  /// globals land at the same addresses every time.
  void reset();

  [[nodiscard]] interp::Memory& memory() noexcept { return memory_; }
  [[nodiscard]] const interp::Memory& memory() const noexcept { return memory_; }
  [[nodiscard]] const BytecodeModule& module() const noexcept { return *module_; }

  [[nodiscard]] const interp::InterpStats& stats() const noexcept { return stats_; }
  void resetStats() noexcept { stats_ = {}; }

  /// Same budget contract as the interpreter: exceeding it throws
  /// TrapError("step limit exceeded (N)") on the offending instruction.
  void setStepLimit(std::uint64_t limit) noexcept { stepLimit_ = limit; }
  [[nodiscard]] std::uint64_t stepLimit() const noexcept { return stepLimit_; }

  /// Install (or clear) a cooperative cancellation token. The dispatch
  /// loop probes it every kCancelStrideSteps step-counted instructions and
  /// throws Error(ErrorCode::Deadline) once it expires.
  void setCancelToken(const qirkit::CancelToken* token) noexcept {
    cancel_ = token;
  }

  /// Address of global number \p index (module order), for host-side pokes.
  [[nodiscard]] std::uint64_t globalAddress(std::size_t index) const;

  void bindExternal(std::string name, ExternalHandler handler) override;

  /// Direct kernel path for fused instructions. When a host is bound,
  /// Fused1/Fused2/FusedDiag hand it the precomposed block; when none is
  /// (recording/Clifford runtimes, or no binding at all), the VM replays
  /// the block's original extern calls one by one, so fusion is
  /// observationally invisible to hosts without fused kernels.
  void bindFusedHost(interp::FusedGateHost* host) override { fusedHost_ = host; }

private:
  interp::RtValue execute(std::uint32_t funcIndex,
                          std::span<const interp::RtValue> args, unsigned depth);
  /// The portable dispatch loop: one switch per instruction, full
  /// step/fault/cancel preamble on every kStep instruction. Always
  /// compiled; the reference semantics and the only loop that runs under
  /// fault injection (it carries the per-step probes).
  interp::RtValue executeSwitch(const CompiledFunction& fn, std::size_t base,
                                unsigned depth, bool injectFaults,
                                const qirkit::CancelToken* cancel);
  /// The token-threaded loop: computed-goto dispatch with the step-limit
  /// and cancellation probes hoisted to block boundaries via a credit
  /// scheme (checkedStepProbe). Only defined on builds where
  /// threadedDispatchAvailable(); bit-compatible with executeSwitch by
  /// construction (both loops include vm_ops.inc).
  interp::RtValue executeThreaded(const CompiledFunction& fn, std::size_t base,
                                  unsigned depth,
                                  const qirkit::CancelToken* cancel);
  /// Slow path of the threaded loop's step accounting: replays the
  /// switch loop's per-step sequence exactly (budget check with the same
  /// trap, stats bump, strided cancel checkpoint), then returns how many
  /// further step-counted instructions may retire with nothing but a
  /// decrement — bounded by both the remaining budget and the distance
  /// to the next cancellation stride boundary.
  std::uint64_t checkedStepProbe(const qirkit::CancelToken* cancel);
  /// Execute one fused block with full per-gate accounting (step budget
  /// with mid-block partial credit, stats, fault probes), dispatching to
  /// the fused host or replaying the source calls. Shared by the Fused*
  /// cases and the FusedSweep interruptible path.
  void execFusedBlock(const interp::FusedBlock& block, std::uint64_t gates,
                      bool injectFaults);
  void materializeGlobals();
  void resolveExterns();

  std::shared_ptr<const BytecodeModule> module_;
  interp::Memory memory_;
  std::vector<std::uint64_t> globalAddresses_;

  /// Per-slot handler pointers, resolved lazily from the name-keyed
  /// registry; invalidated (externsDirty_) whenever a binding changes.
  std::vector<const ExternalHandler*> externSlots_;
  bool externsDirty_ = true;

  /// One arena backs all frames; registers are indexed off a per-call
  /// base. Recursion may reallocate it, so raw pointers into it are
  /// re-derived after every internal call.
  std::vector<interp::RtValue> stack_;
  std::vector<interp::RtValue> argStack_;

  interp::InterpStats stats_;
  interp::FusedGateHost* fusedHost_ = nullptr;
  std::uint64_t stepLimit_ = interp::Interpreter::kDefaultStepLimit;
  std::uint64_t stepsTaken_ = 0;
  const qirkit::CancelToken* cancel_ = nullptr;
};

} // namespace qirkit::vm
