#include "vm/shot_analysis.hpp"

#include "ir/instruction.hpp"
#include "qir/names.hpp"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace qirkit::vm {

using namespace qirkit::ir;

const char* shotProfileName(ShotProfile profile) noexcept {
  return profile == ShotProfile::Terminal ? "terminal" : "feedback-dependent";
}

namespace {

/// Abstract identity of a qubit argument. Two equal tokens may denote the
/// same qubit; two distinct Static tokens always denote distinct qubits.
/// The abstraction errs toward collision (e.g. every qubit from one
/// allocation call site shares a token), which can only disqualify more
/// programs, never fewer.
struct Token {
  enum class Kind : std::uint8_t {
    Static,  // constant address
    Site,    // qubit_allocate call site
    Array,   // allocate_array / array_create call site (base pointer)
    Elem,    // array element (site, index)
    Unknown,
  } kind = Kind::Unknown;
  const void* site = nullptr; // Site/Elem: the allocating call instruction
  std::uint64_t id = 0;       // Static: address; Elem: element index

  bool operator<(const Token& other) const noexcept {
    if (kind != other.kind) {
      return kind < other.kind;
    }
    if (site != other.site) {
      return site < other.site;
    }
    return id < other.id;
  }
  [[nodiscard]] bool isUnknown() const noexcept { return kind == Kind::Unknown; }
};

/// Per-block dataflow facts: which qubit tokens may have been measured /
/// operated on at block entry, along any path from the function entry.
struct Facts {
  std::set<Token> measured;
  std::set<Token> touched;
  bool measuredUnknown = false; // a qubit we cannot identify was measured
  bool touchedUnknown = false;  // ... was gated/reset
  bool reachable = false;

  bool join(const Facts& other) {
    bool changed = false;
    for (const Token& t : other.measured) {
      changed |= measured.insert(t).second;
    }
    for (const Token& t : other.touched) {
      changed |= touched.insert(t).second;
    }
    if (other.measuredUnknown && !measuredUnknown) {
      measuredUnknown = changed = true;
    }
    if (other.touchedUnknown && !touchedUnknown) {
      touchedUnknown = changed = true;
    }
    if (other.reachable && !reachable) {
      reachable = changed = true;
    }
    return changed;
  }
};

bool calleeNamed(const Instruction* call, std::string_view name) {
  return call->callee() != nullptr && call->callee()->name() == name;
}

/// Positions of the Qubit* operands of a qis gate call, or nullopt for
/// non-gate qis functions (mz/reset/read_result handled separately).
std::optional<std::vector<unsigned>> gateQubitOperands(std::string_view name) {
  using namespace qir;
  if (name == kQisH || name == kQisX || name == kQisY || name == kQisZ ||
      name == kQisS || name == kQisSAdj || name == kQisT || name == kQisTAdj) {
    return std::vector<unsigned>{0};
  }
  if (name == kQisRX || name == kQisRY || name == kQisRZ) {
    return std::vector<unsigned>{1}; // (angle, qubit)
  }
  if (name == kQisCNOT || name == kQisCZ || name == kQisSwap) {
    return std::vector<unsigned>{0, 1};
  }
  if (name == kQisCCX) {
    return std::vector<unsigned>{0, 1, 2};
  }
  return std::nullopt;
}

/// True if \p fn (a defined function) contains any __quantum__* call.
bool containsQuantumCall(const Function& fn) {
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == Opcode::Call && inst->callee() != nullptr &&
          qir::isQuantumFunction(inst->callee()->name())) {
        return true;
      }
    }
  }
  return false;
}

class Analyzer {
public:
  explicit Analyzer(const ir::Module& module) : module_(module) {}

  ShotAnalysis run() {
    const Function* entry = module_.entryPoint();
    if (entry == nullptr) {
      entry = module_.getFunction("main");
    }
    if (entry == nullptr || entry->isDeclaration()) {
      return fail("module has no executable entry point");
    }
    entry_ = entry;
    // Memory-derived qubit tokens (array elements, loaded handles) are only
    // trustworthy when the program never writes to memory itself; the
    // runtime's own stores (array initialization) are not visible here.
    for (const auto& fn : module_.functions()) {
      for (const auto& block : fn->blocks()) {
        for (const auto& inst : block->instructions()) {
          if (inst->op() == Opcode::Store) {
            hasStores_ = true;
          }
        }
      }
    }
    if (!checkCalls()) {
      return result_;
    }
    if (!checkTaint()) {
      return result_;
    }
    if (!checkOrdering()) {
      return result_;
    }
    return {ShotProfile::Terminal, {}};
  }

private:
  ShotAnalysis fail(std::string reason) {
    result_ = {ShotProfile::FeedbackDependent, std::move(reason)};
    return result_;
  }

  /// Every call in the entry function must be a known QIR function or a
  /// purely classical internal function: quantum operations behind calls
  /// (or unknown externals) are beyond the token abstraction.
  bool checkCalls() {
    for (const auto& block : entry_->blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->op() != Opcode::Call) {
          continue;
        }
        const Function* callee = inst->callee();
        if (callee == nullptr) {
          fail("indirect call in the entry point");
          return false;
        }
        if (qir::isQuantumFunction(callee->name())) {
          continue;
        }
        if (callee->isDeclaration()) {
          fail("call to unknown external function @" + callee->name());
          return false;
        }
        if (!classicalCallee(*callee)) {
          fail("quantum operations behind internal call to @" + callee->name());
          return false;
        }
      }
    }
    return true;
  }

  /// \p fn and everything it calls must be quantum-free.
  bool classicalCallee(const Function& fn) {
    const auto [it, inserted] = classicalCache_.try_emplace(&fn, true);
    if (!inserted) {
      return it->second; // already verified (or in progress: recursion is
                         // quantum-free as long as nothing below is quantum)
    }
    bool ok = !containsQuantumCall(fn);
    for (const auto& block : fn.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (!ok) {
          break;
        }
        if (inst->op() == Opcode::Call) {
          const Function* callee = inst->callee();
          if (callee == nullptr ||
              (callee->isDeclaration() && !qir::isQuantumFunction(callee->name()))) {
            ok = false;
          } else if (!callee->isDeclaration()) {
            ok = classicalCallee(*callee);
          }
        }
      }
    }
    classicalCache_[&fn] = ok;
    return ok;
  }

  /// Taint analysis: nothing observable may depend on a measurement
  /// result. Sources are read_result / result_equal calls; taint flows
  /// through every value-producing instruction (phi fixpoint included) and
  /// must not reach a branch or switch condition, a store, a call
  /// argument, or the return value.
  bool checkTaint() {
    std::set<const Value*> tainted;
    for (const auto& block : entry_->blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Call &&
            (calleeNamed(inst.get(), qir::kQisReadResult) ||
             calleeNamed(inst.get(), qir::kRtResultEqual))) {
          tainted.insert(inst.get());
        }
      }
    }
    if (tainted.empty()) {
      return true;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& block : entry_->blocks()) {
        for (const auto& inst : block->instructions()) {
          if (tainted.count(inst.get()) != 0) {
            continue;
          }
          for (unsigned i = 0; i < inst->numOperands(); ++i) {
            const Value* v = inst->operand(i);
            if (v->kind() != Value::Kind::BasicBlock && tainted.count(v) != 0) {
              tainted.insert(inst.get());
              changed = true;
              break;
            }
          }
        }
      }
    }
    const auto isTainted = [&](const Value* v) { return tainted.count(v) != 0; };
    for (const auto& block : entry_->blocks()) {
      for (const auto& inst : block->instructions()) {
        switch (inst->op()) {
        case Opcode::Br:
          if (inst->isConditionalBr() && isTainted(inst->brCondition())) {
            fail("branch condition depends on a measurement result");
            return false;
          }
          break;
        case Opcode::Switch:
          if (isTainted(inst->operand(0))) {
            fail("switch condition depends on a measurement result");
            return false;
          }
          break;
        case Opcode::Store:
          if (isTainted(inst->operand(0)) || isTainted(inst->operand(1))) {
            fail("a measurement result is stored to memory");
            return false;
          }
          break;
        case Opcode::Call:
          // read_result/result_equal on a tainted *result pointer* would be
          // odd but is equally disqualifying, so no callee exemption here.
          for (unsigned i = 0; i < inst->numOperands(); ++i) {
            if (isTainted(inst->operand(i))) {
              fail("a measurement result flows into a call to @" +
                   (inst->callee() != nullptr ? inst->callee()->name()
                                              : std::string("<indirect>")));
              return false;
            }
          }
          break;
        case Opcode::Ret:
          if (inst->numOperands() == 1 && isTainted(inst->operand(0))) {
            fail("return value depends on a measurement result");
            return false;
          }
          break;
        default:
          break;
        }
      }
    }
    return true;
  }

  Token tokenFor(const Value* v) const {
    switch (v->kind()) {
    case Value::Kind::ConstantIntToPtr:
      return {Token::Kind::Static, nullptr,
              static_cast<const ConstantIntToPtr*>(v)->address()};
    case Value::Kind::ConstantPointerNull:
      return {Token::Kind::Static, nullptr, 0};
    case Value::Kind::Instruction: {
      const auto* inst = static_cast<const Instruction*>(v);
      if (inst->op() == Opcode::Call &&
          calleeNamed(inst, qir::kRtQubitAllocate)) {
        return {Token::Kind::Site, inst, 0};
      }
      if (hasStores_) {
        return {}; // program stores invalidate memory-derived identities
      }
      if (inst->op() == Opcode::Call &&
          calleeNamed(inst, qir::kRtArrayGetElementPtr1d) &&
          inst->numOperands() == 2 &&
          inst->operand(1)->kind() == Value::Kind::ConstantInt) {
        const Token base = tokenFor(inst->operand(0));
        if (base.kind == Token::Kind::Array) {
          return {Token::Kind::Elem, base.site,
                  static_cast<std::uint64_t>(
                      static_cast<const ConstantInt*>(inst->operand(1))->value())};
        }
        return {};
      }
      if (inst->op() == Opcode::Call &&
          (calleeNamed(inst, qir::kRtQubitAllocateArray) ||
           calleeNamed(inst, qir::kRtArrayCreate1d))) {
        return {Token::Kind::Array, inst, 0};
      }
      if (inst->op() == Opcode::Load) {
        // The loaded handle names the same qubit as the slot it came from
        // (no program stores, so the runtime's initialization is the only
        // writer of that slot).
        return tokenFor(inst->operand(0));
      }
      return {};
    }
    default:
      return {};
    }
  }

  /// Token of a value used as a Qubit* argument. An array base pointer
  /// passed directly dereferences its first slot, so it aliases element 0.
  Token qubitTokenFor(const Value* v) const {
    Token t = tokenFor(v);
    if (t.kind == Token::Kind::Array) {
      t.kind = Token::Kind::Elem;
      t.id = 0;
    }
    return t;
  }

  /// The ordering dataflow: no qubit is gated or reset after it may have
  /// been measured, and resets only touch provably fresh qubits.
  bool checkOrdering() {
    const auto& blocks = entry_->blocks();
    std::map<const BasicBlock*, Facts> in;
    in[blocks.front().get()].reachable = true;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& block : blocks) {
        Facts facts = in[block.get()];
        if (!facts.reachable) {
          continue;
        }
        if (!transfer(*block, facts)) {
          return false;
        }
        for (BasicBlock* succ : block->successors()) {
          changed |= in[succ].join(facts);
        }
      }
    }
    return true;
  }

  bool transfer(const BasicBlock& block, Facts& facts) {
    for (const auto& inst : block.instructions()) {
      if (inst->op() != Opcode::Call || inst->callee() == nullptr) {
        continue;
      }
      const std::string& name = inst->callee()->name();
      if (const auto qubits = gateQubitOperands(name)) {
        for (const unsigned pos : *qubits) {
          const Token t = qubitTokenFor(inst->operand(pos));
          if (facts.measuredUnknown || (t.isUnknown() && !facts.measured.empty()) ||
              (!t.isUnknown() && facts.measured.count(t) != 0)) {
            fail("a qubit may be operated on after being measured (" + name + ")");
            return false;
          }
          touch(facts, t);
        }
      } else if (name == qir::kQisMz) {
        const Token t = qubitTokenFor(inst->operand(0));
        touch(facts, t);
        if (t.isUnknown()) {
          facts.measuredUnknown = true;
        } else {
          facts.measured.insert(t);
        }
      } else if (name == qir::kQisReset) {
        const Token t = qubitTokenFor(inst->operand(0));
        // A reset of a fresh qubit is a no-op; anything else turns the
        // pure state into a mixture that a single simulation cannot hold.
        if (t.isUnknown() || facts.touchedUnknown || facts.touched.count(t) != 0) {
          fail("reset of a possibly non-|0> qubit");
          return false;
        }
        touch(facts, t);
      }
      // Remaining __quantum__rt__* bookkeeping (allocate, release, arrays,
      // record_output, get_one/zero) and classical internal calls neither
      // touch amplitudes nor observe outcomes.
    }
    return true;
  }

  static void touch(Facts& facts, const Token& t) {
    if (t.isUnknown()) {
      facts.touchedUnknown = true;
    } else {
      facts.touched.insert(t);
    }
  }

  const ir::Module& module_;
  const Function* entry_ = nullptr;
  bool hasStores_ = false;
  std::map<const Function*, bool> classicalCache_;
  ShotAnalysis result_;
};

} // namespace

ShotAnalysis analyzeShotProfile(const ir::Module& module) {
  return Analyzer(module).run();
}

} // namespace qirkit::vm
