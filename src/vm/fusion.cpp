#include "vm/fusion.hpp"

#include "qir/names.hpp"
#include "sim/gates.hpp"

#include <algorithm>
#include <cassert>
#include <string_view>

namespace qirkit::vm {

using interp::FusedBlock;
using interp::FusedReplayCall;
using interp::Memory;
using interp::RtValue;

namespace {

enum class GateKind : std::uint8_t {
  H, X, Y, Z, S, Sdg, T, Tdg, RX, RY, RZ, Cnot, Cz, Swap,
};

struct GateSpec {
  GateKind kind;
  unsigned numParams; // leading double arguments (rotation angles)
  unsigned numQubits; // trailing qubit arguments
  bool diagonal;      // diagonal in the computational basis
};

/// Every code offset control may enter at (branch/switch targets). Both
/// fusion stages refuse to form a run a branch could enter mid-way.
std::vector<bool> computeJumpTargets(const CompiledFunction& fn) {
  std::vector<bool> jumpTarget(fn.code.size(), false);
  const auto mark = [&jumpTarget](std::uint32_t target) {
    if (target < jumpTarget.size()) {
      jumpTarget[target] = true;
    }
  };
  for (const Inst& in : fn.code) {
    switch (in.op) {
    case Op::Jmp:
      mark(in.a);
      break;
    case Op::JmpIf:
      mark(in.b);
      mark(in.c);
      break;
    default:
      break;
    }
  }
  for (const SwitchTable& table : fn.switchTables) {
    mark(table.defaultTarget);
    for (const auto& [value, target] : table.cases) {
      mark(target);
    }
  }
  return jumpTarget;
}

const GateSpec* classify(std::string_view name) noexcept {
  static const std::pair<std::string_view, GateSpec> kTable[] = {
      {qir::kQisH, {GateKind::H, 0, 1, false}},
      {qir::kQisX, {GateKind::X, 0, 1, false}},
      {qir::kQisY, {GateKind::Y, 0, 1, false}},
      {qir::kQisZ, {GateKind::Z, 0, 1, true}},
      {qir::kQisS, {GateKind::S, 0, 1, true}},
      {qir::kQisSAdj, {GateKind::Sdg, 0, 1, true}},
      {qir::kQisT, {GateKind::T, 0, 1, true}},
      {qir::kQisTAdj, {GateKind::Tdg, 0, 1, true}},
      {qir::kQisRX, {GateKind::RX, 1, 1, false}},
      {qir::kQisRY, {GateKind::RY, 1, 1, false}},
      {qir::kQisRZ, {GateKind::RZ, 1, 1, true}},
      {qir::kQisCNOT, {GateKind::Cnot, 0, 2, false}},
      {qir::kQisCZ, {GateKind::Cz, 0, 2, true}},
      {qir::kQisSwap, {GateKind::Swap, 0, 2, false}},
  };
  for (const auto& [gateName, spec] : kTable) {
    if (gateName == name) {
      return &spec;
    }
  }
  return nullptr;
}

sim::GateMatrix2 matrix2For(GateKind kind, double param) noexcept {
  switch (kind) {
  case GateKind::H: return sim::gateH();
  case GateKind::X: return sim::gateX();
  case GateKind::Y: return sim::gateY();
  case GateKind::Z: return sim::gateZ();
  case GateKind::S: return sim::gateS();
  case GateKind::Sdg: return sim::gateSdg();
  case GateKind::T: return sim::gateT();
  case GateKind::Tdg: return sim::gateTdg();
  case GateKind::RX: return sim::gateRX(param);
  case GateKind::RY: return sim::gateRY(param);
  case GateKind::RZ: return sim::gateRZ(param);
  default: break;
  }
  return sim::GateMatrix2{1, 0, 0, 1};
}

/// One decoded fusable gate call: its instruction span [begin, end)
/// (PushArgs + CallExtern), classified spec, constant operands.
struct GateUnit {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t slot = 0;
  const GateSpec* spec = nullptr;
  double param = 0;
  std::uint64_t qubits[2] = {0, 0};
  std::vector<RtValue> args;
};

class Fuser {
public:
  Fuser(CompiledFunction& fn, const std::vector<std::string>& externNames)
      : fn_(fn), externNames_(externNames) {}

  FusionStats run() {
    jumpTarget_ = computeJumpTargets(fn_);
    std::vector<GateUnit> runUnits;
    std::uint32_t pc = 0;
    const auto size = static_cast<std::uint32_t>(fn_.code.size());
    while (pc < size) {
      // Control may enter at a jump target, so a run never spans one; a
      // target at a unit's first instruction starts a fresh run instead.
      if (jumpTarget_[pc]) {
        flush(runUnits);
      }
      GateUnit unit;
      if (decodeUnit(pc, unit)) {
        runUnits.push_back(std::move(unit));
        pc = runUnits.back().end;
        continue;
      }
      flush(runUnits);
      ++pc;
    }
    flush(runUnits);
    return stats_;
  }

private:
  /// Decode the PushArg* + CallExtern cluster at \p pc as a fusable gate.
  bool decodeUnit(std::uint32_t pc, GateUnit& unit) const {
    const auto size = static_cast<std::uint32_t>(fn_.code.size());
    std::uint32_t cursor = pc;
    while (cursor < size && fn_.code[cursor].op == Op::PushArg) {
      ++cursor;
    }
    const std::uint32_t numArgs = cursor - pc;
    if (numArgs == 0 || cursor >= size) {
      return false;
    }
    const Inst& call = fn_.code[cursor];
    if (call.op != Op::CallExtern || call.a != kNoReg || call.c != numArgs) {
      return false;
    }
    const GateSpec* spec = classify(externNames_[call.b]);
    if (spec == nullptr || numArgs != spec->numParams + spec->numQubits) {
      return false;
    }
    // A branch into the middle of the cluster would skip part of it.
    for (std::uint32_t t = pc + 1; t <= cursor; ++t) {
      if (jumpTarget_[t]) {
        return false;
      }
    }
    // Every operand must be a compile-time constant: angles so the matrix
    // can be composed, qubits so the support (and the runtime's first-use
    // allocation order) is known. Arguments occupy [0, numArgs) and the
    // constant pool [numArgs, numArgs + #constants) of the frame.
    const std::uint32_t constBase = fn_.numArgs;
    const auto constEnd =
        static_cast<std::uint32_t>(constBase + fn_.constants.size());
    unit.args.reserve(numArgs);
    for (std::uint32_t i = 0; i < numArgs; ++i) {
      const std::uint32_t reg = fn_.code[pc + i].a;
      if (reg < constBase || reg >= constEnd) {
        return false;
      }
      unit.args.push_back(fn_.constants[reg - constBase]);
    }
    for (unsigned i = 0; i < spec->numParams; ++i) {
      if (unit.args[i].kind != RtValue::Kind::Double) {
        return false;
      }
    }
    for (unsigned i = 0; i < spec->numQubits; ++i) {
      const RtValue& q = unit.args[spec->numParams + i];
      // Only static QIR addresses: below the memory arena, so they can
      // never alias an array element or a dynamic handle.
      if (q.kind != RtValue::Kind::Ptr || q.p >= Memory::kBase) {
        return false;
      }
      unit.qubits[i] = q.p;
    }
    if (spec->numQubits == 2 && unit.qubits[0] == unit.qubits[1]) {
      return false; // degenerate two-qubit gate; keep runtime semantics
    }
    unit.begin = pc;
    unit.end = cursor + 1;
    unit.slot = call.b;
    unit.spec = spec;
    unit.param = spec->numParams > 0 ? unit.args[0].d : 0.0;
    return true;
  }

  /// Qubit addresses of run[i..end) in first-occurrence order, stopping
  /// once more than \p cap distinct qubits would be needed. Returns the
  /// number of units that fit.
  static std::size_t collectSupport(const std::vector<GateUnit>& run,
                                    std::size_t i, std::size_t cap,
                                    std::vector<std::uint64_t>& support) {
    support.clear();
    std::size_t j = i;
    for (; j < run.size(); ++j) {
      std::vector<std::uint64_t> added;
      for (unsigned k = 0; k < run[j].spec->numQubits; ++k) {
        const std::uint64_t q = run[j].qubits[k];
        if (std::find(support.begin(), support.end(), q) == support.end() &&
            std::find(added.begin(), added.end(), q) == added.end()) {
          added.push_back(q);
        }
      }
      if (support.size() + added.size() > cap) {
        break;
      }
      support.insert(support.end(), added.begin(), added.end());
    }
    return j - i;
  }

  /// Segment a maximal run of fusable units and replace each multi-gate
  /// segment with one fused instruction.
  void flush(std::vector<GateUnit>& run) {
    std::vector<std::uint64_t> support;
    std::size_t i = 0;
    while (i < run.size()) {
      // Rule 3: maximal run of diagonal gates (any support up to the
      // diagonal-table cap) — one multiply per amplitude.
      std::size_t diagLen = 0;
      {
        std::size_t j = i;
        while (j < run.size() && run[j].spec->diagonal) {
          ++j;
        }
        std::vector<GateUnit> slice(run.begin() + static_cast<std::ptrdiff_t>(i),
                                    run.begin() + static_cast<std::ptrdiff_t>(j));
        diagLen = collectSupport(slice, 0, FusedBlock::kMaxQubits, support);
      }
      // Rules 1+2: maximal prefix whose supports fit a two-qubit window.
      const std::size_t winLen = collectSupport(run, i, 2, support);
      if (diagLen >= 2 && diagLen >= winLen) {
        emitDiagonal(run, i, diagLen);
        i += diagLen;
        continue;
      }
      // Cost model: a 4x4 sweep costs roughly three 2x2 sweeps, so a
      // window is only worth paying for when it folds a genuine
      // two-qubit gate. A window of single-qubit gates on two qubits is
      // cheaper as per-qubit chains — emit the leading same-qubit chain
      // (rule 1) and reconsider the rest of the run next iteration.
      bool hasTwoQubitGate = false;
      for (std::size_t j = i; j < i + winLen; ++j) {
        hasTwoQubitGate = hasTwoQubitGate || run[j].spec->numQubits == 2;
      }
      if (winLen >= 2 && hasTwoQubitGate) {
        emitWindow(run, i, winLen);
        i += winLen;
        continue;
      }
      std::size_t chainLen = 1;
      while (i + chainLen < run.size() &&
             run[i + chainLen].spec->numQubits == 1 &&
             run[i + chainLen].qubits[0] == run[i].qubits[0]) {
        ++chainLen;
      }
      if (run[i].spec->numQubits == 1 && chainLen >= 2) {
        emitWindow(run, i, chainLen); // support is one qubit: rule 1
        i += chainLen;
      } else if (winLen >= 4) {
        // Alternating single-qubit gates on two qubits: one 4x4 sweep
        // still beats four or more 2x2 sweeps.
        emitWindow(run, i, winLen);
        i += winLen;
      } else {
        ++i;
      }
    }
    run.clear();
  }

  void emitWindow(const std::vector<GateUnit>& run, std::size_t i,
                  std::size_t len) {
    // Support of exactly the emitted span (flush may hand us a chain
    // that is shorter than the maximal two-qubit window starting here).
    std::vector<std::uint64_t> support;
    for (std::size_t j = i; j < i + len; ++j) {
      for (unsigned k = 0; k < run[j].spec->numQubits; ++k) {
        const std::uint64_t q = run[j].qubits[k];
        if (std::find(support.begin(), support.end(), q) == support.end()) {
          support.push_back(q);
        }
      }
    }
    FusedBlock block;
    block.qubits = support;
    if (support.size() == 1) {
      // Rule 1: a single-qubit chain folds to one 2x2 matrix.
      block.kind = FusedBlock::Kind::Unitary1;
      sim::GateMatrix2 u{1, 0, 0, 1};
      for (std::size_t j = i; j < i + len; ++j) {
        u = sim::matmul(matrix2For(run[j].spec->kind, run[j].param), u);
      }
      block.matrix = {u.m00, u.m01, u.m10, u.m11};
      replace(run, i, len, Op::Fused1, std::move(block));
      return;
    }
    block.kind = FusedBlock::Kind::Unitary2;
    sim::GateMatrix4 u = sim::identity4();
    for (std::size_t j = i; j < i + len; ++j) {
      const GateUnit& g = run[j];
      const auto slotOf = [&](unsigned k) -> unsigned {
        return g.qubits[k] == support[0] ? 0U : 1U;
      };
      sim::GateMatrix4 gm;
      switch (g.spec->kind) {
      case GateKind::Cnot:
        gm = sim::controlled4(sim::gateX(), slotOf(0), slotOf(1));
        break;
      case GateKind::Cz:
        gm = sim::controlled4(sim::gateZ(), slotOf(0), slotOf(1));
        break;
      case GateKind::Swap:
        gm = sim::swap4();
        break;
      default:
        gm = sim::embed2(matrix2For(g.spec->kind, g.param), slotOf(0));
        break;
      }
      u = sim::matmul(gm, u);
    }
    block.matrix.assign(&u.m[0][0], &u.m[0][0] + 16);
    replace(run, i, len, Op::Fused2, std::move(block));
  }

  void emitDiagonal(const std::vector<GateUnit>& run, std::size_t i,
                    std::size_t len) {
    std::vector<std::uint64_t> support;
    std::vector<GateUnit> slice(run.begin() + static_cast<std::ptrdiff_t>(i),
                                run.begin() + static_cast<std::ptrdiff_t>(i + len));
    collectSupport(slice, 0, FusedBlock::kMaxQubits, support);
    FusedBlock block;
    block.kind = FusedBlock::Kind::Diagonal;
    block.qubits = support;
    const auto slotOf = [&](std::uint64_t q) -> std::size_t {
      return static_cast<std::size_t>(
          std::find(support.begin(), support.end(), q) - support.begin());
    };
    block.matrix.assign(std::size_t{1} << support.size(), 1.0);
    for (std::size_t j = i; j < i + len; ++j) {
      const GateUnit& g = run[j];
      if (g.spec->kind == GateKind::Cz) {
        const std::size_t b0 = slotOf(g.qubits[0]);
        const std::size_t b1 = slotOf(g.qubits[1]);
        for (std::size_t idx = 0; idx < block.matrix.size(); ++idx) {
          if (((idx >> b0) & 1) != 0 && ((idx >> b1) & 1) != 0) {
            block.matrix[idx] = -block.matrix[idx];
          }
        }
        continue;
      }
      const sim::GateMatrix2 m = matrix2For(g.spec->kind, g.param);
      const std::size_t b = slotOf(g.qubits[0]);
      for (std::size_t idx = 0; idx < block.matrix.size(); ++idx) {
        block.matrix[idx] *= ((idx >> b) & 1) != 0 ? m.m11 : m.m00;
      }
    }
    replace(run, i, len, Op::FusedDiag, std::move(block));
  }

  /// Overwrite the segment's instruction span: one fused instruction at
  /// the start, Nops for the rest. Offsets are preserved, so no fixups.
  void replace(const std::vector<GateUnit>& run, std::size_t i, std::size_t len,
               Op op, FusedBlock block) {
    block.sourceGates = static_cast<std::uint32_t>(len);
    for (std::size_t j = i; j < i + len; ++j) {
      block.replay.push_back({run[j].slot, run[j].args});
    }
    const std::uint32_t begin = run[i].begin;
    const std::uint32_t end = run[i + len - 1].end;
    for (std::uint32_t t = begin; t < end; ++t) {
      fn_.code[t] = Inst{};
    }
    Inst& fused = fn_.code[begin];
    fused.op = op;
    fused.a = static_cast<std::uint32_t>(fn_.fusedBlocks.size());
    fused.b = block.sourceGates;
    fn_.fusedBlocks.push_back(std::move(block));
    stats_.fusedOps += len;
    ++stats_.blocks;
  }

  CompiledFunction& fn_;
  const std::vector<std::string>& externNames_;
  std::vector<bool> jumpTarget_;
  FusionStats stats_;
};

} // namespace

FusionStats fuseGates(CompiledFunction& fn,
                      const std::vector<std::string>& externNames) {
  return Fuser(fn, externNames).run();
}

std::uint64_t planFusedSweeps(CompiledFunction& fn) {
  const std::vector<bool> jumpTarget = computeJumpTargets(fn);
  const auto isFused = [](Op op) noexcept {
    return op == Op::Fused1 || op == Op::Fused2 || op == Op::FusedDiag;
  };
  std::uint64_t planned = 0;
  const auto size = static_cast<std::uint32_t>(fn.code.size());
  std::uint32_t pc = 0;
  while (pc < size) {
    if (!isFused(fn.code[pc].op)) {
      ++pc;
      continue;
    }
    // Collect the run: fused instructions separated only by Nops (the
    // padding fuseGates left behind), stopping at any jump target past
    // the first member — control entering there must not skip members
    // the sweep has already subsumed — at a non-fused instruction, at a
    // block that is not the previous member's successor in fusedBlocks,
    // and at the per-sweep cap.
    std::vector<std::uint32_t> members{pc};
    std::uint32_t cursor = pc + 1;
    while (cursor < size && members.size() < kMaxSweepBlocks) {
      if (jumpTarget[cursor]) {
        break;
      }
      if (fn.code[cursor].op == Op::Nop) {
        ++cursor;
        continue;
      }
      if (!isFused(fn.code[cursor].op) ||
          fn.code[cursor].a != fn.code[members.back()].a + 1) {
        break;
      }
      members.push_back(cursor);
      ++cursor;
    }
    if (members.size() < 2) {
      pc = cursor;
      continue;
    }
    FusedSweepRun run;
    run.firstBlock = fn.code[members.front()].a;
    run.blockCount = static_cast<std::uint32_t>(members.size());
    for (const std::uint32_t m : members) {
      run.totalGates += fn.code[m].b;
    }
    // The sweep takes the first member's offset; the rest become Nops,
    // so every jump target survives (none lands inside the run).
    Inst& first = fn.code[members.front()];
    first.op = Op::FusedSweep;
    first.a = static_cast<std::uint32_t>(fn.fusedSweeps.size());
    first.b = run.totalGates;
    first.c = run.blockCount;
    for (std::size_t m = 1; m < members.size(); ++m) {
      fn.code[members[m]] = Inst{};
    }
    fn.fusedSweeps.push_back(run);
    ++planned;
    pc = cursor;
  }
  return planned;
}

std::uint64_t compactCode(CompiledFunction& fn) {
  const auto size = static_cast<std::uint32_t>(fn.code.size());
  // newOffset[i] = offset of instruction i after compaction. A Nop maps
  // to the next kept instruction, which is what a jump to it means.
  std::vector<std::uint32_t> newOffset(size, 0);
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    newOffset[i] = kept;
    if (fn.code[i].op != Op::Nop) {
      ++kept;
    }
  }
  if (kept == size) {
    return 0;
  }
  const auto remap = [&newOffset, size, kept](std::uint32_t target) {
    return target < size ? newOffset[target] : kept;
  };
  std::vector<Inst> compacted;
  compacted.reserve(kept);
  for (std::uint32_t i = 0; i < size; ++i) {
    Inst in = fn.code[i];
    if (in.op == Op::Nop) {
      continue;
    }
    if (in.op == Op::Jmp) {
      in.a = remap(in.a);
    } else if (in.op == Op::JmpIf) {
      in.b = remap(in.b);
      in.c = remap(in.c);
    }
    compacted.push_back(in);
  }
  for (SwitchTable& table : fn.switchTables) {
    table.defaultTarget = remap(table.defaultTarget);
    for (auto& [value, target] : table.cases) {
      target = remap(target);
    }
  }
  fn.code = std::move(compacted);
  return size - kept;
}

SuperinstrStats fuseSuperinstructions(CompiledFunction& fn) {
  SuperinstrStats stats;
  const std::vector<bool> jumpTarget = computeJumpTargets(fn);
  std::vector<Inst>& code = fn.code;
  const auto size = static_cast<std::uint32_t>(code.size());
  std::uint32_t pc = 0;
  while (pc < size) {
    const Inst cur = code[pc];
    // PushArg* + Call/CallExtern: collapse a run of >= 2 pushes into one
    // PushCall that falls through to the untouched call instruction (so
    // the call keeps its own preamble accounting and fault probes). The
    // run's interior must not be a jump target — control entering there
    // would land on an Ext slot.
    if (cur.op == Op::PushArg) {
      std::uint32_t n = 1;
      // The PushCall handler replays subsumed pushes without a preamble,
      // so they must be flag-free (PushArg always is — lowering artifact
      // — but a cheap guard beats a silent accounting hole). The head's
      // flags stay on the head and go through the preamble as before.
      while (pc + n < size && code[pc + n].op == Op::PushArg &&
             code[pc + n].flags == 0 && !jumpTarget[pc + n]) {
        ++n;
      }
      const bool callFollows =
          pc + n < size &&
          (code[pc + n].op == Op::Call || code[pc + n].op == Op::CallExtern) &&
          code[pc + n].c == n;
      if (n >= 2 && callFollows) {
        for (std::uint32_t i = 1; i < n; ++i) {
          Inst ext{};
          ext.op = Op::Ext;
          ext.a = code[pc + i].a;
          ext.flags = code[pc + i].flags;
          code[pc + i] = ext;
        }
        code[pc].op = Op::PushCall;
        code[pc].c = n;
        ++stats.pushCall;
        pc += n; // resume at the (unmodified) call
        continue;
      }
      ++pc;
      continue;
    }
    if (pc + 1 >= size || jumpTarget[pc + 1]) {
      ++pc;
      continue;
    }
    const Inst next = code[pc + 1];
    // ICmp + JmpIf on the freshly computed condition. The fused handler
    // still writes the condition register (a later use may read it).
    if (cur.op == Op::ICmp && next.op == Op::JmpIf && next.a == cur.a) {
      code[pc].op = Op::CmpBr;
      Inst ext{};
      ext.op = Op::Ext;
      ext.a = next.b;
      ext.b = next.c;
      ext.flags = next.flags;
      code[pc + 1] = ext;
      ++stats.cmpBr;
      pc += 2;
      continue;
    }
    // IntBin + StoreInt of the result just computed.
    if (cur.op == Op::IntBin && next.op == Op::StoreInt && next.b == cur.a) {
      code[pc].op = Op::BinStore;
      Inst ext{};
      ext.op = Op::Ext;
      ext.c = next.c;
      ext.d = next.d;
      ext.flags = next.flags;
      code[pc + 1] = ext;
      ++stats.binStore;
      pc += 2;
      continue;
    }
    // LoadInt + IntBin whose left operand is the freshly loaded value.
    if (cur.op == Op::LoadInt && next.op == Op::IntBin && next.b == cur.a) {
      code[pc].op = Op::LoadBin;
      Inst ext{};
      ext.op = Op::Ext;
      ext.sub = next.sub;
      ext.a = next.a;
      ext.c = next.c;
      ext.d = next.d;
      ext.flags = next.flags;
      code[pc + 1] = ext;
      ++stats.loadBin;
      pc += 2;
      continue;
    }
    ++pc;
  }
  return stats;
}

} // namespace qirkit::vm
