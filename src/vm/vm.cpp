#include "vm/vm.hpp"

#include "ir/instruction.hpp"
#include "passes/folding.hpp"
#include "support/cancel.hpp"
#include "support/faultinject.hpp"
#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <array>

// The token-threaded loop needs GNU computed goto (&&label). Build it
// only where the toolchain has the extension and the
// QIRKIT_THREADED_DISPATCH CMake option (default ON) left it enabled.
// Everything else — module encoding, semantics, telemetry — is identical
// either way; without it, Threaded-mode modules silently run the switch
// loop.
#if defined(QIRKIT_THREADED_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define QIRKIT_VM_THREADED 1
#else
#define QIRKIT_VM_THREADED 0
#endif

namespace qirkit::vm {

using interp::ExternContext;
using interp::RtValue;
using interp::TrapError;

bool threadedDispatchAvailable() noexcept { return QIRKIT_VM_THREADED != 0; }

namespace {

/// Dispatch accounting groups every opcode into one of six classes; the
/// counters surface as vm.dispatch.* in the --stats report. A
/// superinstruction's head sub-op is classed here (the loop preamble
/// counts it); its handler adds the second sub-op's class explicitly, so
/// per-class counts match unfused execution exactly.
enum OpClass : std::uint8_t {
  kClassData,         // moves, selects, casts, Nop
  kClassArithmetic,   // int/float binops and comparisons
  kClassMemory,       // alloca, loads, stores
  kClassControlFlow,  // jumps, switch, ret, trap
  kClassCallInternal, // PushArg + Call
  kClassCallExternal, // CallExtern (runtime dispatch)
  kClassFused,        // Fused1/Fused2/FusedDiag (gate-fusion pass)
  kNumOpClasses,
};

constexpr OpClass opClassOf(Op op) noexcept {
  switch (op) {
  case Op::IntBin:
  case Op::FloatBin:
  case Op::ICmp:
  case Op::ICmpPtr:
  case Op::FCmp:
  case Op::CmpBr:    // head = ICmp
  case Op::BinStore: // head = IntBin
    return kClassArithmetic;
  case Op::Alloca:
  case Op::LoadInt:
  case Op::LoadDouble:
  case Op::LoadPtr:
  case Op::StoreInt:
  case Op::StoreDouble:
  case Op::StorePtr:
  case Op::LoadBin: // head = LoadInt
    return kClassMemory;
  case Op::Jmp:
  case Op::JmpIf:
  case Op::SwitchI:
  case Op::Ret:
  case Op::RetVoid:
  case Op::Trap:
    return kClassControlFlow;
  case Op::PushArg:
  case Op::Call:
  case Op::PushCall: // head = PushArg
    return kClassCallInternal;
  case Op::CallExtern:
    return kClassCallExternal;
  case Op::Fused1:
  case Op::Fused2:
  case Op::FusedDiag:
  case Op::FusedSweep:
    return kClassFused;
  default:
    return kClassData;
  }
}

telemetry::Counter g_dispatchData{"vm.dispatch.data"};
telemetry::Counter g_dispatchArithmetic{"vm.dispatch.arithmetic"};
telemetry::Counter g_dispatchMemory{"vm.dispatch.memory"};
telemetry::Counter g_dispatchControlFlow{"vm.dispatch.control_flow"};
telemetry::Counter g_dispatchCallInternal{"vm.dispatch.call_internal"};
telemetry::Counter g_dispatchCallExternal{"vm.dispatch.call_external"};
telemetry::Counter g_dispatchFused{"vm.dispatch.fused"};
/// Superinstructions executed (each stands in for one fused opcode pair
/// or PushArg run — one dispatch saved apiece, more for long runs).
telemetry::Counter g_dispatchSuper{"vm.dispatch.superinstr"};
/// Block entries taken by the threaded loop while step-probe credit was
/// outstanding, i.e. without bouncing through the step-limit/cancel
/// checks: the basic-block-chaining win, observable as a counter.
telemetry::Counter g_dispatchChained{"vm.dispatch.chained_blocks"};
/// High-watermark of the dispatch loop actually entered at frame depth 0:
/// 1 = portable switch loop, 2 = token-threaded loop.
telemetry::MaxGauge g_dispatchMode{"vm.dispatch.mode"};

/// Per-frame dispatch tally: plain local increments in the hot loop,
/// flushed to the process-wide counters once per frame (also on unwind).
/// Inactive frames (telemetry disabled) cost nothing here.
struct DispatchTally {
  std::array<std::uint64_t, kNumOpClasses> counts{};
  std::uint64_t superinstr = 0;
  std::uint64_t chainedBlocks = 0;
  bool active = false;

  ~DispatchTally() {
    if (!active) {
      return;
    }
    g_dispatchData.addUnchecked(counts[kClassData]);
    g_dispatchArithmetic.addUnchecked(counts[kClassArithmetic]);
    g_dispatchMemory.addUnchecked(counts[kClassMemory]);
    g_dispatchControlFlow.addUnchecked(counts[kClassControlFlow]);
    g_dispatchCallInternal.addUnchecked(counts[kClassCallInternal]);
    g_dispatchCallExternal.addUnchecked(counts[kClassCallExternal]);
    g_dispatchFused.addUnchecked(counts[kClassFused]);
    g_dispatchSuper.addUnchecked(superinstr);
    g_dispatchChained.addUnchecked(chainedBlocks);
  }
};

} // namespace

Vm::Vm(std::shared_ptr<const BytecodeModule> module) : module_(std::move(module)) {
  materializeGlobals();
}

void Vm::materializeGlobals() {
  // Mirrors the interpreter's constructor; the deterministic bump
  // allocator makes the addresses identical (and equal to the ones the
  // compiler baked into constant pools).
  for (const std::string& bytes : module_->globalInits) {
    const std::uint64_t address =
        memory_.allocate(std::max<std::uint64_t>(1, bytes.size()));
    if (!bytes.empty()) {
      memory_.store(address, bytes.data(), bytes.size());
    }
    globalAddresses_.push_back(address);
  }
}

void Vm::reset() {
  memory_ = interp::Memory();
  globalAddresses_.clear();
  materializeGlobals();
}

std::uint64_t Vm::globalAddress(std::size_t index) const {
  if (index >= globalAddresses_.size()) {
    throw TrapError("reference to unmaterialized global");
  }
  return globalAddresses_[index];
}

void Vm::bindExternal(std::string name, ExternalHandler handler) {
  ExternalRegistry::bindExternal(name, std::move(handler));
  externsDirty_ = true;
}

void Vm::resolveExterns() {
  externSlots_.assign(module_->externNames.size(), nullptr);
  for (std::size_t slot = 0; slot < module_->externNames.size(); ++slot) {
    externSlots_[slot] = findExternal(module_->externNames[slot]);
  }
  externsDirty_ = false;
}

RtValue Vm::run(std::string_view name, std::span<const RtValue> args) {
  const auto it = module_->functionIndexByName.find(std::string(name));
  if (it == module_->functionIndexByName.end()) {
    throw TrapError("no compiled function @" + std::string(name));
  }
  stepsTaken_ = 0;
  stack_.clear();
  argStack_.clear();
  if (externsDirty_) {
    resolveExterns();
  }
  return execute(it->second, args, 0);
}

RtValue Vm::runEntryPoint() {
  if (module_->entryIndex < 0) {
    throw TrapError("module has no executable entry point");
  }
  stepsTaken_ = 0;
  stack_.clear();
  argStack_.clear();
  if (externsDirty_) {
    resolveExterns();
  }
  return execute(static_cast<std::uint32_t>(module_->entryIndex), {}, 0);
}

RtValue Vm::execute(std::uint32_t funcIndex, std::span<const RtValue> args,
                    unsigned depth) {
  if (depth > 512) {
    throw TrapError("call stack overflow (depth > 512)",
                    ErrorCode::ResourceLimit);
  }
  ++stats_.internalCalls;
  // Cached per frame so the disabled case costs nothing in the dispatch
  // loop beyond a predictable branch.
  const bool injectFaults = fault::FaultInjector::instance().enabled();
  // Cached per frame like the fault flag; a null token costs one pointer
  // compare per step-counted instruction, an armed one a strided probe.
  const CancelToken* const cancel = cancel_;
  const CompiledFunction& fn = module_->functions[funcIndex];

  const std::size_t base = stack_.size();
  stack_.resize(base + fn.numRegs);
  RtValue* const regs = stack_.data() + base;
  std::copy(args.begin(), args.end(), regs);
  std::copy(fn.constants.begin(), fn.constants.end(), regs + fn.numArgs);
  ++stats_.blocksEntered;

#if QIRKIT_VM_THREADED
  // Threaded-mode modules take the computed-goto loop — except under
  // fault injection, whose per-step probes belong to the switch loop's
  // full preamble. The fallback is bit-compatible, so drills observe
  // identical behaviour.
  if (module_->dispatch == DispatchMode::Threaded && !injectFaults) {
    if (depth == 0) {
      g_dispatchMode.updateMax(2);
    }
    return executeThreaded(fn, base, depth, cancel);
  }
#endif
  if (depth == 0) {
    g_dispatchMode.updateMax(1);
  }
  return executeSwitch(fn, base, depth, injectFaults, cancel);
}

std::uint64_t Vm::checkedStepProbe(const qirkit::CancelToken* cancel) {
  // Bit-for-bit the switch loop's per-step preamble (no fault probe: the
  // threaded loop never runs with injection armed)...
  if (++stepsTaken_ > stepLimit_) {
    throw TrapError("step limit exceeded (" + std::to_string(stepLimit_) + ")",
                    ErrorCode::StepBudgetExceeded);
  }
  ++stats_.instructionsExecuted;
  if (cancel != nullptr && (stepsTaken_ & (kCancelStrideSteps - 1)) == 0) {
    cancel->checkpoint("vm dispatch");
  }
  // ...then how many further steps provably need none of it: bounded by
  // the remaining budget (credit 0 at the limit makes the *next* step
  // re-enter this probe and trap on the correct instruction) and, with a
  // token armed, by the distance to the next kCancelStrideSteps boundary
  // (the step landing on it must come back here to checkpoint).
  std::uint64_t credit = stepLimit_ - stepsTaken_;
  if (cancel != nullptr) {
    const std::uint64_t untilBoundary =
        kCancelStrideSteps - (stepsTaken_ & (kCancelStrideSteps - 1));
    credit = std::min(credit, untilBoundary - 1);
  }
  return credit;
}

RtValue Vm::executeSwitch(const CompiledFunction& fn, std::size_t base,
                          unsigned depth, bool injectFaults,
                          const qirkit::CancelToken* cancel) {
  DispatchTally tally;
  tally.active = telemetry::enabled();
  RtValue* regs = stack_.data() + base;
  const Inst* code = fn.code.data();
  std::uint32_t pc = 0;
  for (;;) {
    const Inst in = code[pc++];
    if (tally.active) {
      ++tally.counts[opClassOf(in.op)];
    }
    if ((in.flags & kStep) != 0) {
      if (++stepsTaken_ > stepLimit_) {
        throw TrapError("step limit exceeded (" + std::to_string(stepLimit_) + ")",
                        ErrorCode::StepBudgetExceeded);
      }
      ++stats_.instructionsExecuted;
      if (injectFaults) {
        fault::probe(fault::Site::VmDispatch);
      }
      if (cancel != nullptr &&
          (stepsTaken_ & (kCancelStrideSteps - 1)) == 0) {
        cancel->checkpoint("vm dispatch");
      }
    }
    switch (in.op) {
// Switch-loop handler glue: break back to the fetch at the loop head;
// every step re-runs the full preamble, so there is no credit to resync
// and no chaining to count. VM_SECOND_STEP replays that preamble —
// including the fault probe, since fault drills run on this loop — for
// the second sub-op of a superinstruction pair.
#define VM_CASE(name) case Op::name:
#define VM_NEXT() break
// The switch loop counts every step in the preamble; its member
// counters are always current, so there is never anything to flush.
#define VM_FLUSH_STEPS()                                                       \
  do {                                                                         \
  } while (0)
#define VM_SECOND_STEP(flagsExpr)                                              \
  do {                                                                         \
    if (((flagsExpr)&kStep) != 0) {                                            \
      if (++stepsTaken_ > stepLimit_) {                                        \
        throw TrapError("step limit exceeded (" +                              \
                            std::to_string(stepLimit_) + ")",                  \
                        ErrorCode::StepBudgetExceeded);                        \
      }                                                                        \
      ++stats_.instructionsExecuted;                                           \
      if (injectFaults) {                                                      \
        fault::probe(fault::Site::VmDispatch);                                 \
      }                                                                        \
      if (cancel != nullptr &&                                                 \
          (stepsTaken_ & (kCancelStrideSteps - 1)) == 0) {                     \
        cancel->checkpoint("vm dispatch");                                     \
      }                                                                        \
    }                                                                          \
  } while (0)
#define VM_RESYNC()                                                            \
  do {                                                                         \
  } while (0)
#define VM_CHAIN_TALLY()                                                       \
  do {                                                                         \
  } while (0)
#include "vm/vm_ops.inc"
#undef VM_CASE
#undef VM_NEXT
#undef VM_FLUSH_STEPS
#undef VM_SECOND_STEP
#undef VM_RESYNC
#undef VM_CHAIN_TALLY
    }
  }
}

#if QIRKIT_VM_THREADED

RtValue Vm::executeThreaded(const CompiledFunction& fn, std::size_t base,
                            unsigned depth,
                            const qirkit::CancelToken* cancel) {
  DispatchTally tally;
  tally.active = telemetry::enabled();
  RtValue* regs = stack_.data() + base;
  const Inst* code = fn.code.data();
  std::uint32_t pc = 0;
  // Step-probe credit: how many step-counted instructions may retire
  // with a bare decrement before the next checkedStepProbe. Starting at
  // 0 forces a probe on the frame's first step, which establishes the
  // real bound; thereafter probes land only at step-limit exhaustion and
  // kCancelStrideSteps boundaries — i.e. straight-line block runs chain
  // without touching the budget or the token.
  //
  // The counters themselves stay eager (one increment each per step):
  // a register-batched variant with flush-on-observation was measured
  // slower here — the exception edges it needs (every handler can trap)
  // cost more in lost register allocation than the increments do.
  std::uint64_t probeCredit = 0;
  // This loop is never entered with injection armed (execute() routes
  // those frames to the switch loop, which carries the per-step probes);
  // the shared handlers see a constant the compiler folds away.
  constexpr bool injectFaults = false;
  // Token-threaded dispatch: one indirect jump per instruction, indexed
  // by opcode, in Op declaration order. GNU &&label addresses are valid
  // static initializers, so the table is built once.
  static const void* const kOpLabels[] = {
      &&L_Nop,      &&L_Mov,         &&L_IntBin,     &&L_FloatBin,
      &&L_ICmp,     &&L_ICmpPtr,     &&L_FCmp,       &&L_ZExt,
      &&L_Trunc,    &&L_PtrToInt,    &&L_IntToPtr,   &&L_SiToF,
      &&L_UiToF,    &&L_FToSi,       &&L_FToUi,      &&L_Select,
      &&L_Alloca,   &&L_LoadInt,     &&L_LoadDouble, &&L_LoadPtr,
      &&L_StoreInt, &&L_StoreDouble, &&L_StorePtr,   &&L_Jmp,
      &&L_JmpIf,    &&L_SwitchI,     &&L_Ret,        &&L_RetVoid,
      &&L_PushArg,  &&L_Call,        &&L_CallExtern, &&L_Trap,
      &&L_Fused1,   &&L_Fused2,      &&L_FusedDiag,  &&L_FusedSweep,
      &&L_CmpBr,    &&L_BinStore,    &&L_LoadBin,    &&L_PushCall,
      &&L_Ext,
  };
  static_assert(sizeof(kOpLabels) / sizeof(kOpLabels[0]) == kNumOps,
                "label table must cover every opcode, in enum order");
  Inst in{};
// Threaded-loop handler glue: VM_NEXT is the fetch/preamble/dispatch
// sequence itself (no outer loop), with the step fast path a single
// credit decrement. VM_RESYNC zeroes the credit after handlers that
// advance stepsTaken_ in bulk (fused blocks/sweeps, recursive calls) so
// the stale bound is recomputed before the next fast step.
#define VM_CASE(name) L_##name:
// Counters are eager, so there is nothing to flush — the macro marks the
// places where the member counters become observable (frame exits,
// recursion, fused bulk accounting), which any batched-counting scheme
// would have to honour.
#define VM_FLUSH_STEPS()                                                       \
  do {                                                                         \
  } while (0)
#define VM_NEXT()                                                              \
  do {                                                                         \
    in = code[pc++];                                                           \
    if (tally.active) {                                                        \
      ++tally.counts[opClassOf(in.op)];                                        \
    }                                                                          \
    if ((in.flags & kStep) != 0) {                                             \
      if (probeCredit != 0) {                                                  \
        --probeCredit;                                                         \
        ++stepsTaken_;                                                         \
        ++stats_.instructionsExecuted;                                         \
      } else {                                                                 \
        probeCredit = checkedStepProbe(cancel);                                \
      }                                                                        \
    }                                                                          \
    goto* kOpLabels[static_cast<std::size_t>(in.op)];                          \
  } while (0)
#define VM_SECOND_STEP(flagsExpr)                                              \
  do {                                                                         \
    if (((flagsExpr)&kStep) != 0) {                                            \
      if (probeCredit != 0) {                                                  \
        --probeCredit;                                                         \
        ++stepsTaken_;                                                         \
        ++stats_.instructionsExecuted;                                         \
      } else {                                                                 \
        probeCredit = checkedStepProbe(cancel);                                \
      }                                                                        \
    }                                                                          \
  } while (0)
#define VM_RESYNC() probeCredit = 0
#define VM_CHAIN_TALLY()                                                       \
  do {                                                                         \
    if (tally.active && probeCredit != 0) {                                    \
      ++tally.chainedBlocks;                                                   \
    }                                                                          \
  } while (0)
  VM_NEXT();
#include "vm/vm_ops.inc"
#undef VM_CASE
#undef VM_FLUSH_STEPS
#undef VM_NEXT
#undef VM_SECOND_STEP
#undef VM_RESYNC
#undef VM_CHAIN_TALLY
}

#endif // QIRKIT_VM_THREADED

void Vm::execFusedBlock(const interp::FusedBlock& block, std::uint64_t gates,
                        bool injectFaults) {
  // One fused block stands in for `gates` source gate calls; account for
  // all of them (steps, stats, fault probes) so fused runs are
  // indistinguishable from unfused ones to every observer but the wall
  // clock. Fused instructions carry no kStep flag.
  if (stepsTaken_ + gates > stepLimit_) {
    // Partial credit exactly as if the gates ran one by one: the first
    // (stepLimit_ - stepsTaken_) complete, the next one trips the budget
    // before counting as executed.
    const std::uint64_t executed = stepLimit_ - stepsTaken_;
    stepsTaken_ = stepLimit_ + 1;
    stats_.instructionsExecuted += executed;
    stats_.externalCalls += executed;
    throw TrapError("step limit exceeded (" + std::to_string(stepLimit_) + ")",
                    ErrorCode::StepBudgetExceeded);
  }
  stepsTaken_ += gates;
  stats_.instructionsExecuted += gates;
  stats_.externalCalls += gates;
  if (injectFaults) {
    for (std::uint64_t g = 0; g < gates; ++g) {
      fault::probe(fault::Site::VmDispatch);
      fault::probe(fault::Site::RuntimeCall);
    }
  }
  if (fusedHost_ != nullptr) {
    fusedHost_->applyFusedBlock(block);
    return;
  }
  // No fused kernels on this host: replay the original calls so
  // recording/Clifford runtimes (and unbound slots' diagnostics)
  // behave identically to unfused execution.
  ExternContext context{memory_};
  for (const interp::FusedReplayCall& call : block.replay) {
    const ExternalHandler* handler = externSlots_[call.slot];
    if (handler == nullptr) {
      throw TrapError("call to undefined external @" +
                          module_->externNames[call.slot] +
                          " (no runtime binding registered)",
                      ErrorCode::TrapUnboundExternal);
    }
    (*handler)({call.args.data(), call.args.size()}, context);
  }
}

} // namespace qirkit::vm
