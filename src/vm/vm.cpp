#include "vm/vm.hpp"

#include "ir/instruction.hpp"
#include "passes/folding.hpp"
#include "support/cancel.hpp"
#include "support/faultinject.hpp"
#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <array>

namespace qirkit::vm {

using interp::ExternContext;
using interp::RtValue;
using interp::TrapError;

namespace {

/// Dispatch accounting groups every opcode into one of six classes; the
/// counters surface as vm.dispatch.* in the --stats report.
enum OpClass : std::uint8_t {
  kClassData,         // moves, selects, casts, Nop
  kClassArithmetic,   // int/float binops and comparisons
  kClassMemory,       // alloca, loads, stores
  kClassControlFlow,  // jumps, switch, ret, trap
  kClassCallInternal, // PushArg + Call
  kClassCallExternal, // CallExtern (runtime dispatch)
  kClassFused,        // Fused1/Fused2/FusedDiag (gate-fusion pass)
  kNumOpClasses,
};

constexpr OpClass opClassOf(Op op) noexcept {
  switch (op) {
  case Op::IntBin:
  case Op::FloatBin:
  case Op::ICmp:
  case Op::ICmpPtr:
  case Op::FCmp:
    return kClassArithmetic;
  case Op::Alloca:
  case Op::LoadInt:
  case Op::LoadDouble:
  case Op::LoadPtr:
  case Op::StoreInt:
  case Op::StoreDouble:
  case Op::StorePtr:
    return kClassMemory;
  case Op::Jmp:
  case Op::JmpIf:
  case Op::SwitchI:
  case Op::Ret:
  case Op::RetVoid:
  case Op::Trap:
    return kClassControlFlow;
  case Op::PushArg:
  case Op::Call:
    return kClassCallInternal;
  case Op::CallExtern:
    return kClassCallExternal;
  case Op::Fused1:
  case Op::Fused2:
  case Op::FusedDiag:
  case Op::FusedSweep:
    return kClassFused;
  default:
    return kClassData;
  }
}

telemetry::Counter g_dispatchData{"vm.dispatch.data"};
telemetry::Counter g_dispatchArithmetic{"vm.dispatch.arithmetic"};
telemetry::Counter g_dispatchMemory{"vm.dispatch.memory"};
telemetry::Counter g_dispatchControlFlow{"vm.dispatch.control_flow"};
telemetry::Counter g_dispatchCallInternal{"vm.dispatch.call_internal"};
telemetry::Counter g_dispatchCallExternal{"vm.dispatch.call_external"};
telemetry::Counter g_dispatchFused{"vm.dispatch.fused"};

/// Per-frame dispatch tally: plain local increments in the hot loop,
/// flushed to the process-wide counters once per frame (also on unwind).
/// Inactive frames (telemetry disabled) cost nothing here.
struct DispatchTally {
  std::array<std::uint64_t, kNumOpClasses> counts{};
  bool active = false;

  ~DispatchTally() {
    if (!active) {
      return;
    }
    g_dispatchData.addUnchecked(counts[kClassData]);
    g_dispatchArithmetic.addUnchecked(counts[kClassArithmetic]);
    g_dispatchMemory.addUnchecked(counts[kClassMemory]);
    g_dispatchControlFlow.addUnchecked(counts[kClassControlFlow]);
    g_dispatchCallInternal.addUnchecked(counts[kClassCallInternal]);
    g_dispatchCallExternal.addUnchecked(counts[kClassCallExternal]);
    g_dispatchFused.addUnchecked(counts[kClassFused]);
  }
};

} // namespace

Vm::Vm(std::shared_ptr<const BytecodeModule> module) : module_(std::move(module)) {
  materializeGlobals();
}

void Vm::materializeGlobals() {
  // Mirrors the interpreter's constructor; the deterministic bump
  // allocator makes the addresses identical (and equal to the ones the
  // compiler baked into constant pools).
  for (const std::string& bytes : module_->globalInits) {
    const std::uint64_t address =
        memory_.allocate(std::max<std::uint64_t>(1, bytes.size()));
    if (!bytes.empty()) {
      memory_.store(address, bytes.data(), bytes.size());
    }
    globalAddresses_.push_back(address);
  }
}

void Vm::reset() {
  memory_ = interp::Memory();
  globalAddresses_.clear();
  materializeGlobals();
}

std::uint64_t Vm::globalAddress(std::size_t index) const {
  if (index >= globalAddresses_.size()) {
    throw TrapError("reference to unmaterialized global");
  }
  return globalAddresses_[index];
}

void Vm::bindExternal(std::string name, ExternalHandler handler) {
  ExternalRegistry::bindExternal(name, std::move(handler));
  externsDirty_ = true;
}

void Vm::resolveExterns() {
  externSlots_.assign(module_->externNames.size(), nullptr);
  for (std::size_t slot = 0; slot < module_->externNames.size(); ++slot) {
    externSlots_[slot] = findExternal(module_->externNames[slot]);
  }
  externsDirty_ = false;
}

RtValue Vm::run(std::string_view name, std::span<const RtValue> args) {
  const auto it = module_->functionIndexByName.find(std::string(name));
  if (it == module_->functionIndexByName.end()) {
    throw TrapError("no compiled function @" + std::string(name));
  }
  stepsTaken_ = 0;
  stack_.clear();
  argStack_.clear();
  if (externsDirty_) {
    resolveExterns();
  }
  return execute(it->second, args, 0);
}

RtValue Vm::runEntryPoint() {
  if (module_->entryIndex < 0) {
    throw TrapError("module has no executable entry point");
  }
  stepsTaken_ = 0;
  stack_.clear();
  argStack_.clear();
  if (externsDirty_) {
    resolveExterns();
  }
  return execute(static_cast<std::uint32_t>(module_->entryIndex), {}, 0);
}

RtValue Vm::execute(std::uint32_t funcIndex, std::span<const RtValue> args,
                    unsigned depth) {
  if (depth > 512) {
    throw TrapError("call stack overflow (depth > 512)",
                    ErrorCode::ResourceLimit);
  }
  ++stats_.internalCalls;
  // Cached per frame so the disabled case costs nothing in the dispatch
  // loop beyond a predictable branch.
  const bool injectFaults = fault::FaultInjector::instance().enabled();
  // Cached per frame like the fault flag; a null token costs one pointer
  // compare per step-counted instruction, an armed one a strided probe.
  const CancelToken* const cancel = cancel_;
  // Same per-frame caching as the fault-injection flag: the disabled
  // dispatch loop pays one predictable branch per instruction, no atomics.
  DispatchTally tally;
  tally.active = telemetry::enabled();
  const CompiledFunction& fn = module_->functions[funcIndex];

  const std::size_t base = stack_.size();
  stack_.resize(base + fn.numRegs);
  RtValue* regs = stack_.data() + base;
  std::copy(args.begin(), args.end(), regs);
  std::copy(fn.constants.begin(), fn.constants.end(), regs + fn.numArgs);
  ++stats_.blocksEntered;

  const Inst* code = fn.code.data();
  std::uint32_t pc = 0;
  for (;;) {
    const Inst in = code[pc++];
    if (tally.active) {
      ++tally.counts[opClassOf(in.op)];
    }
    if ((in.flags & kStep) != 0) {
      if (++stepsTaken_ > stepLimit_) {
        throw TrapError("step limit exceeded (" + std::to_string(stepLimit_) + ")",
                        ErrorCode::StepBudgetExceeded);
      }
      ++stats_.instructionsExecuted;
      if (injectFaults) {
        fault::probe(fault::Site::VmDispatch);
      }
      if (cancel != nullptr &&
          (stepsTaken_ & (kCancelStrideSteps - 1)) == 0) {
        cancel->checkpoint("vm dispatch");
      }
    }
    switch (in.op) {
    case Op::Nop:
      break;
    case Op::Mov:
      regs[in.a] = regs[in.b];
      break;
    case Op::IntBin: {
      std::int64_t result = 0;
      if (!passes::evalIntBinOp(static_cast<ir::Opcode>(in.sub), in.d,
                                regs[in.b].i, regs[in.c].i, result)) {
        throw TrapError(std::string("arithmetic trap in ") +
                            ir::opcodeName(static_cast<ir::Opcode>(in.sub)) +
                            " (division by zero or oversized shift)",
                        ErrorCode::TrapArithmetic);
      }
      regs[in.a] = RtValue::makeInt(result);
      break;
    }
    case Op::FloatBin:
      regs[in.a] = RtValue::makeDouble(passes::evalFloatBinOp(
          static_cast<ir::Opcode>(in.sub), regs[in.b].d, regs[in.c].d));
      break;
    case Op::ICmp:
      regs[in.a] = RtValue::makeInt(
          passes::evalICmp(static_cast<ir::ICmpPred>(in.sub), in.d, regs[in.b].i,
                           regs[in.c].i)
              ? 1
              : 0);
      break;
    case Op::ICmpPtr:
      regs[in.a] = RtValue::makeInt(
          passes::evalICmp(static_cast<ir::ICmpPred>(in.sub), 64,
                           static_cast<std::int64_t>(regs[in.b].p),
                           static_cast<std::int64_t>(regs[in.c].p))
              ? 1
              : 0);
      break;
    case Op::FCmp:
      regs[in.a] = RtValue::makeInt(
          passes::evalFCmp(static_cast<ir::FCmpPred>(in.sub), regs[in.b].d,
                           regs[in.c].d)
              ? 1
              : 0);
      break;
    case Op::ZExt: {
      const std::uint64_t raw = static_cast<std::uint64_t>(regs[in.b].i);
      const std::uint64_t mask =
          in.d >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << in.d) - 1;
      regs[in.a] = RtValue::makeInt(static_cast<std::int64_t>(raw & mask));
      break;
    }
    case Op::Trunc: {
      std::int64_t v = regs[in.b].i;
      if (in.d < 64) {
        const std::uint64_t mask = (std::uint64_t{1} << in.d) - 1;
        std::uint64_t raw = static_cast<std::uint64_t>(v) & mask;
        if (((raw >> (in.d - 1)) & 1) != 0) {
          raw |= ~mask;
        }
        v = static_cast<std::int64_t>(raw);
      }
      regs[in.a] = RtValue::makeInt(v);
      break;
    }
    case Op::PtrToInt:
      regs[in.a] = RtValue::makeInt(static_cast<std::int64_t>(regs[in.b].p));
      break;
    case Op::IntToPtr:
      regs[in.a] = RtValue::makePtr(static_cast<std::uint64_t>(regs[in.b].i));
      break;
    case Op::SiToF:
      regs[in.a] = RtValue::makeDouble(static_cast<double>(regs[in.b].i));
      break;
    case Op::UiToF:
      regs[in.a] = RtValue::makeDouble(
          static_cast<double>(static_cast<std::uint64_t>(regs[in.b].i)));
      break;
    case Op::FToSi:
      regs[in.a] = RtValue::makeInt(static_cast<std::int64_t>(regs[in.b].d));
      break;
    case Op::FToUi:
      regs[in.a] = RtValue::makeInt(
          static_cast<std::int64_t>(static_cast<std::uint64_t>(regs[in.b].d)));
      break;
    case Op::Select:
      regs[in.a] = regs[in.b].i != 0 ? regs[in.c] : regs[in.d];
      break;
    case Op::Alloca:
      regs[in.a] = RtValue::makePtr(memory_.allocate(in.d));
      break;
    case Op::LoadInt:
      regs[in.a] = RtValue::makeInt(memory_.loadInt(regs[in.b].p, in.d, true));
      break;
    case Op::LoadDouble: {
      double value = 0.0;
      memory_.load(regs[in.b].p, &value, sizeof value);
      regs[in.a] = RtValue::makeDouble(value);
      break;
    }
    case Op::LoadPtr: {
      std::uint64_t value = 0;
      memory_.load(regs[in.b].p, &value, sizeof value);
      regs[in.a] = RtValue::makePtr(value);
      break;
    }
    case Op::StoreInt:
      memory_.storeInt(regs[in.c].p, regs[in.b].i, in.d);
      break;
    case Op::StoreDouble:
      memory_.store(regs[in.c].p, &regs[in.b].d, sizeof(double));
      break;
    case Op::StorePtr:
      memory_.store(regs[in.c].p, &regs[in.b].p, sizeof(std::uint64_t));
      break;
    case Op::Jmp:
      // Flagged jumps realize a source `br`; stub jumps (phi edges) do
      // not re-enter the block for accounting purposes.
      if ((in.flags & kStep) != 0) {
        ++stats_.blocksEntered;
      }
      pc = in.a;
      break;
    case Op::JmpIf:
      ++stats_.blocksEntered;
      pc = regs[in.a].i != 0 ? in.b : in.c;
      break;
    case Op::SwitchI: {
      ++stats_.blocksEntered;
      const SwitchTable& table = fn.switchTables[in.b];
      const std::int64_t cond = regs[in.a].i;
      std::uint32_t target = table.defaultTarget;
      for (const auto& [value, caseTarget] : table.cases) {
        if (value == cond) {
          target = caseTarget;
          break;
        }
      }
      pc = target;
      break;
    }
    case Op::Ret: {
      const RtValue result = regs[in.a];
      stack_.resize(base);
      return result;
    }
    case Op::RetVoid:
      stack_.resize(base);
      return RtValue::makeVoid();
    case Op::PushArg:
      argStack_.push_back(regs[in.a]);
      break;
    case Op::Call: {
      const std::size_t argBase = argStack_.size() - in.c;
      // The callee copies its arguments into its frame on entry, before
      // any nested PushArg can reallocate argStack_, so the span is safe.
      const RtValue result = execute(
          in.b, {argStack_.data() + argBase, in.c}, depth + 1);
      argStack_.resize(argBase);
      regs = stack_.data() + base; // recursion may have reallocated
      if (in.a != kNoReg) {
        regs[in.a] = result;
      }
      break;
    }
    case Op::CallExtern: {
      const ExternalHandler* handler = externSlots_[in.b];
      if (handler == nullptr) {
        // Same diagnostic as the interpreter (the paper's lli failure
        // mode when no runtime supplies the quantum instructions).
        throw TrapError("call to undefined external @" +
                            module_->externNames[in.b] +
                            " (no runtime binding registered)",
                        ErrorCode::TrapUnboundExternal);
      }
      ++stats_.externalCalls;
      if (injectFaults) {
        fault::probe(fault::Site::RuntimeCall);
      }
      const std::size_t argBase = argStack_.size() - in.c;
      ExternContext context{memory_};
      const RtValue result =
          (*handler)({argStack_.data() + argBase, in.c}, context);
      argStack_.resize(argBase);
      if (in.a != kNoReg) {
        regs[in.a] = result;
      }
      break;
    }
    case Op::Trap:
      throw TrapError("executed 'unreachable'", ErrorCode::TrapUnreachable);
    case Op::Fused1:
    case Op::Fused2:
    case Op::FusedDiag:
      execFusedBlock(fn.fusedBlocks[in.a], in.b, injectFaults);
      break;
    case Op::FusedSweep: {
      // One instruction stands in for run.blockCount fused blocks. The
      // fast path hands the whole run to the host's chunk-blocked sweep
      // kernel — sound only when nothing can interrupt mid-run, i.e. the
      // step budget covers every gate and no fault probes fire.
      // Otherwise fall back to per-block execution, which is bit-exactly
      // the unswept Fused* behaviour (partial credit, probe order).
      const FusedSweepRun& run = fn.fusedSweeps[in.a];
      const interp::FusedBlock* const blocks =
          fn.fusedBlocks.data() + run.firstBlock;
      if (tally.active) {
        // Keep vm.dispatch.fused counting *blocks* dispatched, as the
        // unswept code would (the loop head counted this instruction
        // once already).
        tally.counts[kClassFused] += run.blockCount - 1;
      }
      if (fusedHost_ != nullptr && !injectFaults &&
          stepsTaken_ + run.totalGates <= stepLimit_) {
        stepsTaken_ += run.totalGates;
        stats_.instructionsExecuted += run.totalGates;
        stats_.externalCalls += run.totalGates;
        fusedHost_->applyFusedSweep({blocks, run.blockCount});
        break;
      }
      for (std::uint32_t b = 0; b < run.blockCount; ++b) {
        execFusedBlock(blocks[b], blocks[b].sourceGates, injectFaults);
      }
      break;
    }
    }
  }
}

void Vm::execFusedBlock(const interp::FusedBlock& block, std::uint64_t gates,
                        bool injectFaults) {
  // One fused block stands in for `gates` source gate calls; account for
  // all of them (steps, stats, fault probes) so fused runs are
  // indistinguishable from unfused ones to every observer but the wall
  // clock. Fused instructions carry no kStep flag.
  if (stepsTaken_ + gates > stepLimit_) {
    // Partial credit exactly as if the gates ran one by one: the first
    // (stepLimit_ - stepsTaken_) complete, the next one trips the budget
    // before counting as executed.
    const std::uint64_t executed = stepLimit_ - stepsTaken_;
    stepsTaken_ = stepLimit_ + 1;
    stats_.instructionsExecuted += executed;
    stats_.externalCalls += executed;
    throw TrapError("step limit exceeded (" + std::to_string(stepLimit_) + ")",
                    ErrorCode::StepBudgetExceeded);
  }
  stepsTaken_ += gates;
  stats_.instructionsExecuted += gates;
  stats_.externalCalls += gates;
  if (injectFaults) {
    for (std::uint64_t g = 0; g < gates; ++g) {
      fault::probe(fault::Site::VmDispatch);
      fault::probe(fault::Site::RuntimeCall);
    }
  }
  if (fusedHost_ != nullptr) {
    fusedHost_->applyFusedBlock(block);
    return;
  }
  // No fused kernels on this host: replay the original calls so
  // recording/Clifford runtimes (and unbound slots' diagnostics)
  // behave identically to unfused execution.
  ExternContext context{memory_};
  for (const interp::FusedReplayCall& call : block.replay) {
    const ExternalHandler* handler = externSlots_[call.slot];
    if (handler == nullptr) {
      throw TrapError("call to undefined external @" +
                          module_->externNames[call.slot] +
                          " (no runtime binding registered)",
                      ErrorCode::TrapUnboundExternal);
    }
    (*handler)({call.args.data(), call.args.size()}, context);
  }
}

} // namespace qirkit::vm
