/// \file compiler.hpp
/// The IR → bytecode compiler. Lowers a (verified) ir::Module into a
/// BytecodeModule: registers resolved, block targets flattened to
/// instruction offsets, phi nodes eliminated via staged edge moves, and
/// external callees assigned runtime-dispatch slots.
#pragma once

#include "ir/module.hpp"
#include "vm/bytecode.hpp"

#include <memory>

namespace qirkit::vm {

/// Thrown when a module cannot be lowered (e.g. malformed control flow
/// that the verifier would reject). Derived from TrapError so callers
/// treating compile+run as one execution route catch a single type; the
/// ErrorCode::CompileFail classification is what the shot executor keys
/// its degrade-to-interpreter decision on.
class CompileError : public interp::TrapError {
public:
  explicit CompileError(const std::string& message)
      : TrapError(message, ErrorCode::CompileFail) {}
};

/// Compilation knobs. Defaults produce the fastest correct code; the
/// flags exist as escape hatches (CLI --fusion=off, --dispatch=switch)
/// and as the reference configuration for differential tests.
struct CompileOptions {
  /// Run the gate-fusion pass (fusion.hpp) after lowering.
  bool fuseGates = true;
  /// Which dispatch loop the module is compiled for. Recorded on the
  /// module and folded into the compile-cache key; the VM falls back to
  /// the switch loop (bit-compatibly) when the build lacks the threaded
  /// one or fault injection is armed.
  DispatchMode dispatch = defaultDispatchMode();
  /// Run the superinstruction peephole (fusion.hpp) after gate fusion:
  /// mines hot opcode pairs (ICmp+JmpIf, IntBin+StoreInt, LoadInt+IntBin,
  /// PushArg*+Call/CallExtern) into single fused opcodes with exact
  /// step/fault/stat accounting. Default off so direct compileModule
  /// callers (tests, tools) see the reference code shape; the shot
  /// executor enables it whenever it compiles for Threaded dispatch.
  bool superinstructions = false;
};

/// Compile every defined function of \p module. The result is immutable
/// and shareable; prefer CompileCache::getOrCompile for repeated use.
[[nodiscard]] std::shared_ptr<const BytecodeModule>
compileModule(const ir::Module& module, const CompileOptions& options = {});

} // namespace qirkit::vm
