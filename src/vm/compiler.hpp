/// \file compiler.hpp
/// The IR → bytecode compiler. Lowers a (verified) ir::Module into a
/// BytecodeModule: registers resolved, block targets flattened to
/// instruction offsets, phi nodes eliminated via staged edge moves, and
/// external callees assigned runtime-dispatch slots.
#pragma once

#include "ir/module.hpp"
#include "vm/bytecode.hpp"

#include <memory>

namespace qirkit::vm {

/// Thrown when a module cannot be lowered (e.g. malformed control flow
/// that the verifier would reject). Derived from TrapError so callers
/// treating compile+run as one execution route catch a single type; the
/// ErrorCode::CompileFail classification is what the shot executor keys
/// its degrade-to-interpreter decision on.
class CompileError : public interp::TrapError {
public:
  explicit CompileError(const std::string& message)
      : TrapError(message, ErrorCode::CompileFail) {}
};

/// Compilation knobs. Defaults produce the fastest correct code; the
/// flags exist as escape hatches (CLI --fusion=off) and as the reference
/// configuration for differential tests.
struct CompileOptions {
  /// Run the gate-fusion pass (fusion.hpp) after lowering.
  bool fuseGates = true;
};

/// Compile every defined function of \p module. The result is immutable
/// and shareable; prefer CompileCache::getOrCompile for repeated use.
[[nodiscard]] std::shared_ptr<const BytecodeModule>
compileModule(const ir::Module& module, const CompileOptions& options = {});

} // namespace qirkit::vm
