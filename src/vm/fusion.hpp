/// \file fusion.hpp
/// The gate-fusion pass: a compile-time peephole over linear bytecode that
/// folds runs of adjacent, fully-constant `__quantum__qis__*` calls into
/// single fused instructions (Op::Fused1/Fused2/FusedDiag) backed by
/// precomposed matrices. Running at bytecode-compile time means the pass
/// lands in the LRU compile cache, so its cost amortizes across every
/// shot of a batch while each shot pays one statevector sweep per fused
/// block instead of one per gate.
///
/// Three fusion rules, applied greedily left to right:
///  1. chains of single-qubit gates on the same qubit -> one 2x2 matrix;
///  2. adjacent one-/two-qubit gates whose supports fit in a shared
///     two-qubit window -> one 4x4 matrix (StateVector::apply2);
///  3. runs of diagonal gates (Z/S/Sdg/T/Tdg/RZ/CZ) -> one diagonal-phase
///     table over up to FusedBlock::kMaxQubits qubits.
///
/// Soundness barriers — a run never extends across:
///  * any non-gate instruction (mz, reset, read_result, rt calls,
///    branches, classical ops): measurement and control flow observe the
///    state, so gate order around them is preserved;
///  * a gate with a non-constant operand (classically-controlled angle or
///    qubit): its value is only known per shot;
///  * a gate whose qubit operand is not a static QIR address: dynamic
///    handles and arena pointers resolve through runtime state;
///  * any jump target: control may enter there, so the instructions
///    before it must have executed exactly; a fused instruction sits at
///    its run's first offset and the rest are Nops, hence a run that a
///    branch could enter mid-way is never formed.
#pragma once

#include "vm/bytecode.hpp"

namespace qirkit::vm {

struct FusionStats {
  std::uint64_t fusedOps = 0;    // source gate calls folded away
  std::uint64_t blocks = 0;      // fused instructions emitted
  /// Amplitude-array sweeps removed per execution of the fused code
  /// (fusedOps - blocks): the quantity the pass exists to minimize.
  [[nodiscard]] std::uint64_t sweepsSaved() const noexcept {
    return fusedOps - blocks;
  }
};

/// Run the fusion peephole over \p fn (in place). \p externNames is the
/// module's slot table (gate recognition is by extern name). Must run
/// after jump fixups; preserves every instruction offset.
FusionStats fuseGates(CompiledFunction& fn,
                      const std::vector<std::string>& externNames);

/// Second fusion stage (sweep planning): collapse every run of >= 2
/// consecutive fused instructions — separated only by Nops, with no jump
/// target landing after the run's first offset — into one Op::FusedSweep
/// whose member blocks sit contiguously in fn.fusedBlocks. At run time a
/// sweep lets the statevector walk each cache-sized chunk once for the
/// whole run (StateVector::applyFusedSweep) instead of once per block.
/// Runs of more than kMaxSweepBlocks blocks split into several sweeps.
/// Must run after fuseGates; preserves every instruction offset. Returns
/// the number of sweeps planned.
std::uint64_t planFusedSweeps(CompiledFunction& fn);

/// Upper bound on blocks per planned sweep.
inline constexpr std::size_t kMaxSweepBlocks = 16;

/// Remove the Op::Nop padding the two fusion stages leave behind,
/// remapping every jump target (Jmp/JmpIf fields and switch tables) onto
/// the compacted offsets. Nops are pure lowering artifacts — they carry
/// no kStep flag — but before this pass they still flowed through the
/// dispatch loop on every execution, inflating the vm.dispatch.* per-
/// opcode-class counters (and wasting a dispatch round apiece) on hot
/// fused loops. No jump ever targets a Nop (both fusion stages refuse to
/// form a run past a jump target), so compaction preserves semantics and
/// accounting exactly. Returns the number of instructions removed.
std::uint64_t compactCode(CompiledFunction& fn);

struct SuperinstrStats {
  std::uint64_t cmpBr = 0;     // ICmp+JmpIf pairs fused
  std::uint64_t binStore = 0;  // IntBin+StoreInt pairs fused
  std::uint64_t loadBin = 0;   // LoadInt+IntBin pairs fused
  std::uint64_t pushCall = 0;  // PushArg* runs collapsed ahead of a call
  [[nodiscard]] std::uint64_t total() const noexcept {
    return cmpBr + binStore + loadBin + pushCall;
  }
};

/// The superinstruction peephole: rewrite hot opcode pairs into single
/// fused opcodes (Op::CmpBr/BinStore/LoadBin/PushCall). The replaced
/// span keeps its length — the head instruction is followed by Op::Ext
/// slots carrying the second sub-op's operands and flags — so every
/// code offset survives and no fixups are needed. A pair is only formed
/// when no jump targets its interior, and each sub-op's step/stat/fault
/// accounting is replayed exactly by the fused handler, so fused and
/// unfused execution are bit-compatible. Must run after compactCode
/// (the patterns are adjacency-based; Nop padding would hide them).
SuperinstrStats fuseSuperinstructions(CompiledFunction& fn);

} // namespace qirkit::vm
