/// \file fusion.hpp
/// The gate-fusion pass: a compile-time peephole over linear bytecode that
/// folds runs of adjacent, fully-constant `__quantum__qis__*` calls into
/// single fused instructions (Op::Fused1/Fused2/FusedDiag) backed by
/// precomposed matrices. Running at bytecode-compile time means the pass
/// lands in the LRU compile cache, so its cost amortizes across every
/// shot of a batch while each shot pays one statevector sweep per fused
/// block instead of one per gate.
///
/// Three fusion rules, applied greedily left to right:
///  1. chains of single-qubit gates on the same qubit -> one 2x2 matrix;
///  2. adjacent one-/two-qubit gates whose supports fit in a shared
///     two-qubit window -> one 4x4 matrix (StateVector::apply2);
///  3. runs of diagonal gates (Z/S/Sdg/T/Tdg/RZ/CZ) -> one diagonal-phase
///     table over up to FusedBlock::kMaxQubits qubits.
///
/// Soundness barriers — a run never extends across:
///  * any non-gate instruction (mz, reset, read_result, rt calls,
///    branches, classical ops): measurement and control flow observe the
///    state, so gate order around them is preserved;
///  * a gate with a non-constant operand (classically-controlled angle or
///    qubit): its value is only known per shot;
///  * a gate whose qubit operand is not a static QIR address: dynamic
///    handles and arena pointers resolve through runtime state;
///  * any jump target: control may enter there, so the instructions
///    before it must have executed exactly; a fused instruction sits at
///    its run's first offset and the rest are Nops, hence a run that a
///    branch could enter mid-way is never formed.
#pragma once

#include "vm/bytecode.hpp"

namespace qirkit::vm {

struct FusionStats {
  std::uint64_t fusedOps = 0;    // source gate calls folded away
  std::uint64_t blocks = 0;      // fused instructions emitted
  /// Amplitude-array sweeps removed per execution of the fused code
  /// (fusedOps - blocks): the quantity the pass exists to minimize.
  [[nodiscard]] std::uint64_t sweepsSaved() const noexcept {
    return fusedOps - blocks;
  }
};

/// Run the fusion peephole over \p fn (in place). \p externNames is the
/// module's slot table (gate recognition is by extern name). Must run
/// after jump fixups; preserves every instruction offset.
FusionStats fuseGates(CompiledFunction& fn,
                      const std::vector<std::string>& externNames);

/// Second fusion stage (sweep planning): collapse every run of >= 2
/// consecutive fused instructions — separated only by Nops, with no jump
/// target landing after the run's first offset — into one Op::FusedSweep
/// whose member blocks sit contiguously in fn.fusedBlocks. At run time a
/// sweep lets the statevector walk each cache-sized chunk once for the
/// whole run (StateVector::applyFusedSweep) instead of once per block.
/// Runs of more than kMaxSweepBlocks blocks split into several sweeps.
/// Must run after fuseGates; preserves every instruction offset. Returns
/// the number of sweeps planned.
std::uint64_t planFusedSweeps(CompiledFunction& fn);

/// Upper bound on blocks per planned sweep.
inline constexpr std::size_t kMaxSweepBlocks = 16;

} // namespace qirkit::vm
