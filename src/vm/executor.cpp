#include "vm/executor.hpp"

#include "interp/interpreter.hpp"
#include "support/rng.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"
#include "vm/cache.hpp"
#include "vm/compiler.hpp"

#include <mutex>
#include <optional>

namespace qirkit::vm {

using interp::TrapError;

const char* engineName(Engine engine) noexcept {
  return engine == Engine::Vm ? "vm" : "interp";
}

std::uint64_t deriveRetrySeed(std::uint64_t baseSeed, std::uint64_t shot,
                              std::uint64_t attempt) noexcept {
  SplitMix64 mix(baseSeed ^ (shot * 0x9e3779b97f4a7c15ULL) ^
                 (attempt * 0xbf58476d1ce4e5b9ULL));
  return mix();
}

namespace {

telemetry::Counter g_shotsCompleted{"shots.completed"};
telemetry::Counter g_shotsFailed{"shots.failed"};
telemetry::Counter g_shotsRetries{"shots.retries"};
telemetry::Counter g_shotsInterpFallbacks{"shots.interp_fallbacks"};
telemetry::Counter g_shotsBatches{"shots.batches"};
telemetry::Counter g_shotsDegradedBatches{"shots.degraded_batches"};
telemetry::LatencyHistogram g_shotLatency{"shots.latency_ns"};

/// Per-chunk accumulator, merged into the batch under a mutex (or moved
/// directly in the sequential path).
struct ChunkResult {
  std::map<std::string, std::uint64_t> histogram;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retryAttempts = 0;
  std::uint64_t interpFallbackShots = 0;
  std::map<ErrorCode, std::uint64_t> failureCounts;
  std::vector<ShotFailure> failures;
};

/// The outcome of one successful shot attempt.
struct ShotOutcome {
  std::string bits;
  runtime::RuntimeStats stats;
  interp::InterpStats engineStats;
};

/// One shot on the reference engine: fresh Interpreter + runtime, as the
/// historical interp chunk ran them. Shared by the interp engine path and
/// the VM engine's per-shot fallback. Throws on trap.
ShotOutcome runInterpShot(const ir::Module& module, std::uint64_t seed) {
  interp::Interpreter interp(module);
  runtime::QuantumRuntime rt(seed, nullptr);
  rt.bind(interp);
  interp.runEntryPoint();
  return {rt.outputBitString(), rt.stats(), interp.stats()};
}

/// Executes the shots of one chunk with per-shot fault isolation: a
/// trapping shot is classified, optionally rescued on the reference
/// interpreter (VM engine only), retried when transient, and finally
/// recorded as a failure — never allowed to abort the surrounding shots.
class ChunkRunner {
public:
  ChunkRunner(const ir::Module& module,
              const std::shared_ptr<const BytecodeModule>& compiled,
              Engine engine, const ShotOptions& opts)
      : module_(module), opts_(opts), engine_(engine) {
    if (engine_ == Engine::Vm) {
      vm_.emplace(compiled);
      rt_.emplace(0, nullptr);
      rt_->bind(*vm_);
    }
  }

  void run(std::uint64_t begin, std::uint64_t end, ChunkResult& out,
           ShotBatchResult& batch) {
    for (std::uint64_t shot = begin; shot < end; ++shot) {
      runIsolated(shot, out, batch);
    }
  }

private:
  ShotOutcome runVmShot(std::uint64_t seed) {
    rt_->reset(seed);
    vm_->reset();
    vm_->resetStats();
    vm_->runEntryPoint();
    return {rt_->outputBitString(), rt_->stats(), vm_->stats()};
  }

  ShotOutcome runAttempt(std::uint64_t seed) {
    return engine_ == Engine::Vm ? runVmShot(seed) : runInterpShot(module_, seed);
  }

  void runIsolated(std::uint64_t shot, ChunkResult& out, ShotBatchResult& batch) {
    // One clock pair per shot, only while telemetry is armed; the latency
    // includes retries and fallback reruns — it is the user-visible cost
    // of delivering (or giving up on) this shot.
    const std::uint64_t t0 = telemetry::enabled() ? telemetry::nowNs() : 0;
    runIsolatedImpl(shot, out, batch);
    if (t0 != 0) {
      g_shotLatency.recordUnchecked(telemetry::nowNs() - t0);
    }
  }

  void runIsolatedImpl(std::uint64_t shot, ChunkResult& out,
                       ShotBatchResult& batch) {
    std::uint64_t attempt = 0;
    for (;;) {
      const std::uint64_t seed = attempt == 0
                                     ? opts_.seed + shot
                                     : deriveRetrySeed(opts_.seed, shot, attempt);
      ClassifiedError failure;
      try {
        record(shot, runAttempt(seed), out, batch);
        return;
      } catch (const std::exception& e) {
        failure = classifyException(e);
      }
      if (engine_ == Engine::Vm && opts_.interpFallback) {
        // Differential disagreement check: if the reference engine
        // completes the shot the VM trapped on, the reference answer
        // stands and the trap is the VM's problem, not the program's.
        try {
          record(shot, runInterpShot(module_, seed), out, batch);
          ++out.interpFallbackShots;
          return;
        } catch (const std::exception& e) {
          failure = classifyException(e); // the reference verdict wins
        }
      }
      if (failure.transient && attempt < opts_.retries) {
        ++attempt;
        ++out.retryAttempts;
        continue;
      }
      ++out.failed;
      ++out.failureCounts[failure.code];
      if (telemetry::enabled()) {
        // Same per-code taxonomy as ShotBatchResult::failureCounts,
        // surfaced process-wide as shots.failure_counts.
        telemetry::recordShotFailure(failure.code);
      }
      if (out.failures.size() < ShotBatchResult::kMaxFailureRecords) {
        out.failures.push_back(
            {shot, failure.code, failure.transient, failure.message});
      }
      return;
    }
  }

  void record(std::uint64_t shot, ShotOutcome outcome, ChunkResult& out,
              ShotBatchResult& batch) {
    ++out.completed;
    ++out.histogram[outcome.bits];
    if (shot + 1 == opts_.shots) {
      batch.lastShotStats = outcome.stats;
      batch.lastShotEngineStats = outcome.engineStats;
    }
  }

  const ir::Module& module_;
  const ShotOptions& opts_;
  Engine engine_;
  std::optional<Vm> vm_;
  std::optional<runtime::QuantumRuntime> rt_;
};

void mergeChunk(ChunkResult&& chunk, ShotBatchResult& result) {
  for (const auto& [bits, count] : chunk.histogram) {
    result.histogram[bits] += count;
  }
  result.completedShots += chunk.completed;
  result.failedShots += chunk.failed;
  result.retryAttempts += chunk.retryAttempts;
  result.interpFallbackShots += chunk.interpFallbackShots;
  for (const auto& [code, count] : chunk.failureCounts) {
    result.failureCounts[code] += count;
  }
  for (ShotFailure& failure : chunk.failures) {
    if (result.failures.size() >= ShotBatchResult::kMaxFailureRecords) {
      break;
    }
    result.failures.push_back(std::move(failure));
  }
}

} // namespace

ShotBatchResult runShots(const ir::Module& module, const ShotOptions& opts) {
  const telemetry::trace::Span span("execute.batch");
  g_shotsBatches.add();
  ShotBatchResult result;
  Engine engine = opts.engine;

  std::shared_ptr<const BytecodeModule> compiled;
  if (engine == Engine::Vm) {
    try {
      if (opts.useCompileCache) {
        const CompileCache::Stats before = CompileCache::global().stats();
        compiled = CompileCache::global().getOrCompile(module);
        const CompileCache::Stats after = CompileCache::global().stats();
        result.cacheHits = after.hits - before.hits;
        result.cacheMisses = after.misses - before.misses;
      } else {
        compiled = compileModule(module);
        result.cacheMisses = 1;
      }
    } catch (const std::exception& e) {
      const ClassifiedError failure = classifyException(e);
      if (!opts.interpFallback) {
        throw;
      }
      // Whole-batch graceful degradation: the reference engine needs no
      // bytecode, so a failed compile costs speed, never the answer.
      engine = Engine::Interp;
      result.degradedToInterp = true;
      result.degradeReason = std::string("bytecode compilation failed (") +
                             errorCodeName(failure.code) +
                             "): " + failure.message;
    }
  }
  result.engineUsed = engine;

  if (result.degradedToInterp) {
    g_shotsDegradedBatches.add();
  }

  const auto runChunk = [&](std::uint64_t begin, std::uint64_t end,
                            ChunkResult& out) {
    const telemetry::trace::Span chunkSpan("execute.chunk");
    ChunkRunner runner(module, compiled, engine, opts);
    runner.run(begin, end, out, result);
  };

  const auto finish = [&]() -> ShotBatchResult& {
    g_shotsCompleted.add(result.completedShots);
    g_shotsFailed.add(result.failedShots);
    g_shotsRetries.add(result.retryAttempts);
    g_shotsInterpFallbacks.add(result.interpFallbackShots);
    if (result.failedShots > opts.maxFailedShots) {
      const ShotFailure& first = result.failures.front();
      throw TrapError("shot " + std::to_string(first.shot) +
                          " failed: " + first.message + " (" +
                          std::to_string(result.failedShots) + " of " +
                          std::to_string(opts.shots) + " shots failed, " +
                          std::to_string(opts.maxFailedShots) + " tolerated)",
                      first.code, first.transient);
    }
    return result;
  };

  if (opts.pool == nullptr || opts.pool->size() <= 1 || opts.shots <= 1) {
    ChunkResult chunk;
    runChunk(0, opts.shots, chunk);
    mergeChunk(std::move(chunk), result);
    return finish();
  }

  const std::uint64_t workers =
      std::min<std::uint64_t>(opts.pool->size(), opts.shots);
  const std::uint64_t chunkSize = (opts.shots + workers - 1) / workers;
  std::mutex mergeMutex;
  std::optional<ClassifiedError> infrastructureError;
  for (std::uint64_t w = 0; w < workers; ++w) {
    const std::uint64_t begin = w * chunkSize;
    const std::uint64_t end = std::min(opts.shots, begin + chunkSize);
    if (begin >= end) {
      break;
    }
    opts.pool->submit([&, begin, end] {
      ChunkResult chunk;
      try {
        runChunk(begin, end, chunk);
      } catch (const std::exception& e) {
        // Per-shot isolation means a chunk only throws on infrastructure
        // failures (engine construction, allocation) — still merged, so
        // completed shots of other chunks are not discarded silently.
        const std::lock_guard<std::mutex> lock(mergeMutex);
        if (!infrastructureError.has_value()) {
          infrastructureError = classifyException(e);
        }
        mergeChunk(std::move(chunk), result);
        return;
      }
      const std::lock_guard<std::mutex> lock(mergeMutex);
      mergeChunk(std::move(chunk), result);
    });
  }
  opts.pool->wait();
  if (infrastructureError.has_value()) {
    throw TrapError(infrastructureError->message, infrastructureError->code,
                    infrastructureError->transient);
  }
  return finish();
}

} // namespace qirkit::vm
