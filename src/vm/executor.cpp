#include "vm/executor.hpp"

#include "interp/interpreter.hpp"
#include "support/cancel.hpp"
#include "support/rng.hpp"
#include "support/telemetry/request_trace.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"
#include "vm/cache.hpp"
#include "vm/compiler.hpp"
#include "vm/shot_analysis.hpp"

#include <mutex>
#include <optional>

namespace qirkit::vm {

using interp::TrapError;

const char* engineName(Engine engine) noexcept {
  return engine == Engine::Vm ? "vm" : "interp";
}

const char* execModeName(ExecMode mode) noexcept {
  switch (mode) {
  case ExecMode::Auto:
    return "auto";
  case ExecMode::Resim:
    return "resim";
  case ExecMode::Sample:
    return "sample";
  }
  return "auto";
}

std::uint64_t deriveRetrySeed(std::uint64_t baseSeed, std::uint64_t shot,
                              std::uint64_t attempt) noexcept {
  SplitMix64 mix(baseSeed ^ (shot * 0x9e3779b97f4a7c15ULL) ^
                 (attempt * 0xbf58476d1ce4e5b9ULL));
  return mix();
}

namespace {

telemetry::Counter g_shotsCompleted{"shots.completed"};
telemetry::Counter g_shotsFailed{"shots.failed"};
telemetry::Counter g_shotsRetries{"shots.retries"};
telemetry::Counter g_shotsInterpFallbacks{"shots.interp_fallbacks"};
telemetry::Counter g_shotsBatches{"shots.batches"};
telemetry::Counter g_shotsDegradedBatches{"shots.degraded_batches"};
telemetry::Counter g_sampleBatches{"shots.sample_mode_batches"};
telemetry::Counter g_shotsSampled{"shots.sampled"};
telemetry::Counter g_sampleFallbacks{"shots.sample_fallbacks"};
telemetry::Counter g_analysisTerminal{"shots.analysis.terminal"};
telemetry::Counter g_analysisFeedback{"shots.analysis.feedback_dependent"};
telemetry::Counter g_deadlineBatches{"shots.deadline_batches"};
telemetry::Counter g_shotsUnstarted{"shots.unstarted"};
telemetry::LatencyHistogram g_shotLatency{"shots.latency_ns"};

/// Per-chunk accumulator, merged into the batch under a mutex (or moved
/// directly in the sequential path).
struct ChunkResult {
  std::map<std::string, std::uint64_t> histogram;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retryAttempts = 0;
  std::uint64_t interpFallbackShots = 0;
  std::map<ErrorCode, std::uint64_t> failureCounts;
  std::vector<ShotFailure> failures;
  /// The chunk stopped early on an expired cancellation token; the shots
  /// it never ran (including one abandoned mid-flight) are in unstarted.
  bool deadlineHit = false;
  std::uint64_t unstarted = 0;
  /// Stats of the batch's final shot, when this chunk ran it successfully.
  /// Merged into the batch under the merge lock — workers never write the
  /// shared result directly.
  bool hasLastShot = false;
  runtime::RuntimeStats lastShotStats;
  interp::InterpStats lastShotEngineStats;
};

/// The outcome of one successful shot attempt.
struct ShotOutcome {
  std::string bits;
  runtime::RuntimeStats stats;
  interp::InterpStats engineStats;
};

/// One shot on the reference engine: fresh Interpreter + runtime, as the
/// historical interp chunk ran them. Shared by the interp engine path and
/// the VM engine's per-shot fallback. Throws on trap.
ShotOutcome runInterpShot(const ir::Module& module, std::uint64_t seed,
                          const qirkit::CancelToken* cancel = nullptr,
                          sim::Precision precision = sim::Precision::F64) {
  interp::Interpreter interp(module);
  runtime::QuantumRuntime rt(seed, nullptr, precision);
  interp.setCancelToken(cancel);
  rt.setCancelToken(cancel);
  rt.bind(interp);
  interp.runEntryPoint();
  return {rt.outputBitString(), rt.stats(), interp.stats()};
}

/// Executes the shots of one chunk with per-shot fault isolation: a
/// trapping shot is classified, optionally rescued on the reference
/// interpreter (VM engine only), retried when transient, and finally
/// recorded as a failure — never allowed to abort the surrounding shots.
class ChunkRunner {
public:
  ChunkRunner(const ir::Module& module,
              const std::shared_ptr<const BytecodeModule>& compiled,
              Engine engine, const ShotOptions& opts)
      : module_(module), opts_(opts), engine_(engine) {
    // Both engines are constructed once per chunk and reset per shot; the
    // deterministic bump allocator makes a reset Interpreter
    // indistinguishable from a fresh one (identical arena addresses).
    if (engine_ == Engine::Vm) {
      vm_.emplace(compiled);
      rt_.emplace(0, nullptr, opts.precision);
      vm_->setCancelToken(opts.cancel);
      rt_->bind(*vm_);
    } else {
      interp_.emplace(module_);
      rt_.emplace(0, nullptr, opts.precision);
      interp_->setCancelToken(opts.cancel);
      rt_->bind(*interp_);
    }
    rt_->setCancelToken(opts.cancel);
  }

  void run(std::uint64_t begin, std::uint64_t end, ChunkResult& out) {
    const qirkit::CancelToken* const cancel = opts_.cancel;
    for (std::uint64_t shot = begin; shot < end; ++shot) {
      // Shot-boundary probe: never start a shot whose token has expired.
      if (cancel != nullptr && cancel->expired()) {
        out.deadlineHit = true;
        out.unstarted += end - shot;
        return;
      }
      runIsolated(shot, out);
      if (out.deadlineHit) {
        // The shot itself was cut mid-flight: it and everything after it
        // in this chunk count as unstarted, never as failed.
        out.unstarted += end - shot;
        return;
      }
    }
  }

private:
  ShotOutcome runVmShot(std::uint64_t seed) {
    rt_->reset(seed);
    vm_->reset();
    vm_->resetStats();
    vm_->runEntryPoint();
    return {rt_->outputBitString(), rt_->stats(), vm_->stats()};
  }

  ShotOutcome runHostedInterpShot(std::uint64_t seed) {
    rt_->reset(seed);
    interp_->reset();
    interp_->runEntryPoint();
    return {rt_->outputBitString(), rt_->stats(), interp_->stats()};
  }

  ShotOutcome runAttempt(std::uint64_t seed) {
    return engine_ == Engine::Vm ? runVmShot(seed) : runHostedInterpShot(seed);
  }

  void runIsolated(std::uint64_t shot, ChunkResult& out) {
    // One clock pair per shot, only while telemetry is armed; the latency
    // includes retries and fallback reruns — it is the user-visible cost
    // of delivering (or giving up on) this shot.
    const std::uint64_t t0 = telemetry::enabled() ? telemetry::nowNs() : 0;
    runIsolatedImpl(shot, out);
    if (t0 != 0) {
      g_shotLatency.recordUnchecked(telemetry::nowNs() - t0);
    }
  }

  void runIsolatedImpl(std::uint64_t shot, ChunkResult& out) {
    std::uint64_t attempt = 0;
    for (;;) {
      const std::uint64_t seed = attempt == 0
                                     ? opts_.seed + shot
                                     : deriveRetrySeed(opts_.seed, shot, attempt);
      ClassifiedError failure;
      try {
        record(shot, runAttempt(seed), out);
        return;
      } catch (const std::exception& e) {
        failure = classifyException(e);
      }
      if (failure.code == ErrorCode::Deadline) {
        // Not a shot failure: the batch's clock ran out mid-shot. No
        // fallback, no retry — the caller records the cut and stops.
        out.deadlineHit = true;
        return;
      }
      if (engine_ == Engine::Vm && opts_.interpFallback) {
        // Differential disagreement check: if the reference engine
        // completes the shot the VM trapped on, the reference answer
        // stands and the trap is the VM's problem, not the program's.
        try {
          record(shot,
                 runInterpShot(module_, seed, opts_.cancel, opts_.precision),
                 out);
          ++out.interpFallbackShots;
          return;
        } catch (const std::exception& e) {
          failure = classifyException(e); // the reference verdict wins
        }
        if (failure.code == ErrorCode::Deadline) {
          out.deadlineHit = true;
          return;
        }
      }
      if (failure.transient && attempt < opts_.retries) {
        ++attempt;
        ++out.retryAttempts;
        continue;
      }
      ++out.failed;
      ++out.failureCounts[failure.code];
      if (telemetry::enabled()) {
        // Same per-code taxonomy as ShotBatchResult::failureCounts,
        // surfaced process-wide as shots.failure_counts.
        telemetry::recordShotFailure(failure.code);
      }
      if (out.failures.size() < ShotBatchResult::kMaxFailureRecords) {
        out.failures.push_back(
            {shot, failure.code, failure.transient, failure.message});
      }
      return;
    }
  }

  void record(std::uint64_t shot, ShotOutcome outcome, ChunkResult& out) {
    ++out.completed;
    ++out.histogram[outcome.bits];
    if (shot + 1 == opts_.shots) {
      out.hasLastShot = true;
      out.lastShotStats = outcome.stats;
      out.lastShotEngineStats = outcome.engineStats;
    }
  }

  const ir::Module& module_;
  const ShotOptions& opts_;
  Engine engine_;
  std::optional<Vm> vm_;
  std::optional<interp::Interpreter> interp_;
  std::optional<runtime::QuantumRuntime> rt_;
};

/// The terminal-measurement fast path: run the program exactly once on
/// the selected engine with deferred (non-collapsing) measurements, then
/// draw all N shots from the final state. The single simulation may use
/// the batch's thread pool for gate kernels — unlike per-shot resim there
/// is no outer shot parallelism to collide with — and stays bit-identical
/// to a sequential run (disjoint-index kernels, sequential reductions).
/// Throws on any trap; the caller degrades to resim.
void runSampledBatch(const ir::Module& module,
                     const std::shared_ptr<const BytecodeModule>& compiled,
                     Engine engine, const ShotOptions& opts,
                     ShotBatchResult& result) {
  const telemetry::trace::Span span("execute.sample");
  runtime::QuantumRuntime rt(opts.seed, opts.pool, opts.precision);
  rt.setMeasurementMode(runtime::QuantumRuntime::MeasurementMode::Defer);
  rt.setCancelToken(opts.cancel);
  interp::InterpStats engineStats;
  if (engine == Engine::Vm) {
    Vm machine(compiled);
    machine.setCancelToken(opts.cancel);
    rt.bind(machine);
    machine.runEntryPoint();
    engineStats = machine.stats();
  } else {
    interp::Interpreter interp(module);
    interp.setCancelToken(opts.cancel);
    rt.bind(interp);
    interp.runEntryPoint();
    engineStats = interp.stats();
  }
  // One uniform per shot, drawn sequentially from a stream keyed on the
  // batch seed: the histogram depends only on (program, seed, shots),
  // never on engine or pool size.
  SplitMix64 rng(opts.seed);
  result.histogram = rt.sampleRecordedHistogram(opts.shots, rng);
  result.completedShots = opts.shots;
  result.lastShotStats = rt.stats();
  result.lastShotEngineStats = engineStats;
  result.sampled = true;
}

void mergeChunk(ChunkResult&& chunk, ShotBatchResult& result) {
  for (const auto& [bits, count] : chunk.histogram) {
    result.histogram[bits] += count;
  }
  if (chunk.hasLastShot) {
    result.lastShotStats = chunk.lastShotStats;
    result.lastShotEngineStats = chunk.lastShotEngineStats;
  }
  result.completedShots += chunk.completed;
  result.failedShots += chunk.failed;
  result.deadlineExceeded |= chunk.deadlineHit;
  result.unstartedShots += chunk.unstarted;
  result.retryAttempts += chunk.retryAttempts;
  result.interpFallbackShots += chunk.interpFallbackShots;
  for (const auto& [code, count] : chunk.failureCounts) {
    result.failureCounts[code] += count;
  }
  for (ShotFailure& failure : chunk.failures) {
    if (result.failures.size() >= ShotBatchResult::kMaxFailureRecords) {
      break;
    }
    result.failures.push_back(std::move(failure));
  }
}

} // namespace

ShotBatchResult runShots(const ir::Module& module, const ShotOptions& opts) {
  const telemetry::trace::Span span("execute.batch");
  g_shotsBatches.add();
  ShotBatchResult result;
  Engine engine = opts.engine;

  // Request-scoped stage marks: batch-level only, on this thread only —
  // the per-shot loop never sees the trace. Cost when absent: one
  // pointer check per stage.
  telemetry::RequestTrace* const rtrace = opts.requestTrace;
  const auto markStage = [&](const char* stage, std::uint64_t t0,
                             std::string_view note = {}) {
    if (rtrace != nullptr) {
      rtrace->addStage(stage, t0, telemetry::nowNs() - t0, note);
    }
  };

  // A token that expired before the batch even started (e.g. a job that
  // sat out its deadline in a queue): report everything as unstarted
  // without paying for compilation or analysis.
  if (opts.cancel != nullptr && opts.cancel->expired()) {
    result.engineUsed = engine;
    result.deadlineExceeded = true;
    result.unstartedShots = opts.shots;
    g_deadlineBatches.add();
    g_shotsUnstarted.add(opts.shots);
    if (rtrace != nullptr) {
      rtrace->addStage("execute", telemetry::nowNs(), 0, "expired");
    }
    return result;
  }

  // F32 admission: the reduced width is only safe when measurement
  // outcomes cannot steer control flow off rounded amplitudes, i.e. when
  // the terminal-measurement analysis holds. Checked up front (even under
  // --exec-mode=resim, which skips the analysis otherwise) so the refusal
  // costs no compile. --force-f32 overrides for users who accept the
  // accumulated per-gate rounding error.
  if (opts.precision == sim::Precision::F32 && !opts.forceF32) {
    const ShotAnalysis analysis = analyzeShotProfile(module);
    if (analysis.profile != ShotProfile::Terminal) {
      throw qirkit::Error(ErrorCode::Usage,
                          "--precision=f32 requires a measurement-terminal "
                          "program (rounding error would steer feedback), "
                          "but the shot analysis found: " +
                              analysis.reason +
                              "; pass --force-f32 to override");
    }
  }
  if (opts.precision == sim::Precision::F32) {
    sim::noteF32Batch();
  }

  std::shared_ptr<const BytecodeModule> compiled;
  if (engine == Engine::Vm) {
    const std::uint64_t compileT0 = rtrace != nullptr ? telemetry::nowNs() : 0;
    try {
      const CompileOptions compileOptions{
          .fuseGates = opts.fusion,
          .dispatch = opts.dispatch,
          .superinstructions = opts.dispatch == DispatchMode::Threaded};
      if (opts.useCompileCache) {
        CompileCache& cache =
            opts.cache != nullptr ? *opts.cache : CompileCache::global();
        const CompileCache::Stats before = cache.stats();
        compiled = cache.getOrCompile(module, compileOptions);
        const CompileCache::Stats after = cache.stats();
        // Under a shared cache these are process-wide deltas and may
        // include concurrent batches' activity; a coalesced join counts
        // as the hit it effectively is.
        result.cacheHits =
            (after.hits + after.coalesced) - (before.hits + before.coalesced);
        result.cacheMisses = after.misses - before.misses;
        markStage("compile", compileT0,
                  result.cacheMisses > 0             ? "miss"
                  : after.coalesced > before.coalesced ? "coalesced"
                                                       : "hit");
      } else {
        compiled = compileModule(module, compileOptions);
        result.cacheMisses = 1;
        markStage("compile", compileT0, "miss");
      }
    } catch (const std::exception& e) {
      const ClassifiedError failure = classifyException(e);
      if (!opts.interpFallback) {
        throw;
      }
      // Whole-batch graceful degradation: the reference engine needs no
      // bytecode, so a failed compile costs speed, never the answer.
      engine = Engine::Interp;
      result.degradedToInterp = true;
      result.degradeReason = std::string("bytecode compilation failed (") +
                             errorCodeName(failure.code) +
                             "): " + failure.message;
      markStage("compile", compileT0, "degraded");
    }
  }
  result.engineUsed = engine;

  if (result.degradedToInterp) {
    g_shotsDegradedBatches.add();
  }

  const auto finish = [&]() -> ShotBatchResult& {
    g_shotsCompleted.add(result.completedShots);
    g_shotsFailed.add(result.failedShots);
    g_shotsRetries.add(result.retryAttempts);
    g_shotsInterpFallbacks.add(result.interpFallbackShots);
    if (result.deadlineExceeded) {
      g_deadlineBatches.add();
      g_shotsUnstarted.add(result.unstartedShots);
    }
    if (result.failedShots > opts.maxFailedShots) {
      const ShotFailure& first = result.failures.front();
      throw TrapError("shot " + std::to_string(first.shot) +
                          " failed: " + first.message + " (" +
                          std::to_string(result.failedShots) + " of " +
                          std::to_string(opts.shots) + " shots failed, " +
                          std::to_string(opts.maxFailedShots) + " tolerated)",
                      first.code, first.transient);
    }
    return result;
  };

  // Execution-mode selection: unless resim was requested, classify the
  // program and serve terminal batches from one simulation. Any fault on
  // the sampling path degrades to the per-shot machinery below.
  if (opts.execMode != ExecMode::Resim) {
    ShotAnalysis analysis;
    const std::uint64_t analyzeT0 = rtrace != nullptr ? telemetry::nowNs() : 0;
    {
      const telemetry::trace::Span analysisSpan("execute.analyze");
      analysis = analyzeShotProfile(module);
    }
    markStage("analyze", analyzeT0,
              analysis.profile == ShotProfile::Terminal ? "terminal"
                                                        : "feedback");
    (analysis.profile == ShotProfile::Terminal ? g_analysisTerminal
                                               : g_analysisFeedback)
        .add();
    if (analysis.profile != ShotProfile::Terminal) {
      if (opts.execMode == ExecMode::Sample) {
        throw qirkit::Error(ErrorCode::Usage,
                            "--exec-mode=sample requires a "
                            "measurement-terminal program, but the shot "
                            "analysis found: " +
                                analysis.reason);
      }
    } else if (opts.shots > 0) {
      const std::uint64_t sampleT0 = rtrace != nullptr ? telemetry::nowNs() : 0;
      try {
        runSampledBatch(module, compiled, engine, opts, result);
        g_sampleBatches.add();
        g_shotsSampled.add(result.completedShots);
        markStage("execute", sampleT0, "sample");
        return finish();
      } catch (const std::exception& e) {
        const ClassifiedError failure = classifyException(e);
        if (failure.code == ErrorCode::Deadline) {
          // Deadline on the sampling path ends the batch — re-simulating
          // against an already-expired clock could never do better. The
          // single simulation had not finished, so no shot completed.
          result.histogram.clear();
          result.completedShots = 0;
          result.lastShotStats = {};
          result.lastShotEngineStats = {};
          result.sampled = false;
          result.deadlineExceeded = true;
          result.unstartedShots = opts.shots;
          markStage("execute", sampleT0, "sample-deadline");
          return finish();
        }
        g_sampleFallbacks.add();
        markStage("execute", sampleT0, "sample-fallback");
        result.sampleFallback = true;
        result.sampleFallbackReason =
            std::string(errorCodeName(failure.code)) + ": " + failure.message;
        result.sampled = false;
        result.histogram.clear();
        result.completedShots = 0;
        result.lastShotStats = {};
        result.lastShotEngineStats = {};
      }
    }
  }

  const auto runChunk = [&](std::uint64_t begin, std::uint64_t end,
                            ChunkResult& out) {
    const telemetry::trace::Span chunkSpan("execute.chunk");
    ChunkRunner runner(module, compiled, engine, opts);
    runner.run(begin, end, out);
  };

  const std::uint64_t resimT0 = rtrace != nullptr ? telemetry::nowNs() : 0;
  if (opts.pool == nullptr || opts.pool->size() <= 1 || opts.shots <= 1) {
    ChunkResult chunk;
    runChunk(0, opts.shots, chunk);
    mergeChunk(std::move(chunk), result);
    markStage("execute", resimT0, "resim");
    return finish();
  }

  const std::uint64_t workers =
      std::min<std::uint64_t>(opts.pool->size(), opts.shots);
  const std::uint64_t chunkSize = (opts.shots + workers - 1) / workers;
  std::mutex mergeMutex;
  std::optional<ClassifiedError> infrastructureError;
  // A TaskGroup waits for exactly this batch's chunks: the pool may be
  // serving other batches (every service tenant shares one), and
  // ThreadPool::wait() would block on their work too.
  TaskGroup group(*opts.pool);
  for (std::uint64_t w = 0; w < workers; ++w) {
    const std::uint64_t begin = w * chunkSize;
    const std::uint64_t end = std::min(opts.shots, begin + chunkSize);
    if (begin >= end) {
      break;
    }
    group.submit([&, begin, end] {
      ChunkResult chunk;
      try {
        runChunk(begin, end, chunk);
      } catch (const std::exception& e) {
        // Per-shot isolation means a chunk only throws on infrastructure
        // failures (engine construction, allocation) — still merged, so
        // completed shots of other chunks are not discarded silently.
        const std::lock_guard<std::mutex> lock(mergeMutex);
        if (!infrastructureError.has_value()) {
          infrastructureError = classifyException(e);
        }
        mergeChunk(std::move(chunk), result);
        return;
      }
      const std::lock_guard<std::mutex> lock(mergeMutex);
      mergeChunk(std::move(chunk), result);
    });
  }
  group.wait();
  markStage("execute", resimT0, "resim");
  if (infrastructureError.has_value()) {
    throw TrapError(infrastructureError->message, infrastructureError->code,
                    infrastructureError->transient);
  }
  return finish();
}

} // namespace qirkit::vm
