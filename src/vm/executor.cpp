#include "vm/executor.hpp"

#include "vm/cache.hpp"
#include "vm/compiler.hpp"

#include <mutex>
#include <optional>

namespace qirkit::vm {

using interp::TrapError;

const char* engineName(Engine engine) noexcept {
  return engine == Engine::Vm ? "vm" : "interp";
}

namespace {

struct ChunkResult {
  std::map<std::string, std::uint64_t> histogram;
};

/// Run shots [begin, end) on the VM engine. One Vm + one bound runtime
/// serve the whole chunk; reset() between shots replaces re-parsing,
/// re-binding, and re-materializing from scratch.
void runVmChunk(const std::shared_ptr<const BytecodeModule>& compiled,
                const ShotOptions& opts, std::uint64_t begin, std::uint64_t end,
                ChunkResult& out, ShotBatchResult& batch) {
  Vm vm(compiled);
  runtime::QuantumRuntime rt(0, nullptr);
  rt.bind(vm);
  for (std::uint64_t shot = begin; shot < end; ++shot) {
    rt.reset(opts.seed + shot);
    vm.reset();
    vm.resetStats();
    vm.runEntryPoint();
    ++out.histogram[rt.outputBitString()];
    if (shot + 1 == opts.shots) {
      batch.lastShotStats = rt.stats();
      batch.lastShotEngineStats = vm.stats();
    }
  }
}

/// Run shots [begin, end) on the interpreter engine — the reference
/// behaviour: a fresh Interpreter and runtime per shot.
void runInterpChunk(const ir::Module& module, const ShotOptions& opts,
                    std::uint64_t begin, std::uint64_t end, ChunkResult& out,
                    ShotBatchResult& batch) {
  for (std::uint64_t shot = begin; shot < end; ++shot) {
    interp::Interpreter interp(module);
    runtime::QuantumRuntime rt(opts.seed + shot, nullptr);
    rt.bind(interp);
    interp.runEntryPoint();
    ++out.histogram[rt.outputBitString()];
    if (shot + 1 == opts.shots) {
      batch.lastShotStats = rt.stats();
      batch.lastShotEngineStats = interp.stats();
    }
  }
}

} // namespace

ShotBatchResult runShots(const ir::Module& module, const ShotOptions& opts) {
  ShotBatchResult result;

  std::shared_ptr<const BytecodeModule> compiled;
  if (opts.engine == Engine::Vm) {
    if (opts.useCompileCache) {
      const CompileCache::Stats before = CompileCache::global().stats();
      compiled = CompileCache::global().getOrCompile(module);
      const CompileCache::Stats after = CompileCache::global().stats();
      result.cacheHits = after.hits - before.hits;
      result.cacheMisses = after.misses - before.misses;
    } else {
      compiled = compileModule(module);
      result.cacheMisses = 1;
    }
  }

  const auto runChunk = [&](std::uint64_t begin, std::uint64_t end,
                            ChunkResult& out) {
    if (opts.engine == Engine::Vm) {
      runVmChunk(compiled, opts, begin, end, out, result);
    } else {
      runInterpChunk(module, opts, begin, end, out, result);
    }
  };

  if (opts.pool == nullptr || opts.pool->size() <= 1 || opts.shots <= 1) {
    ChunkResult chunk;
    runChunk(0, opts.shots, chunk);
    result.histogram = std::move(chunk.histogram);
    return result;
  }

  const std::uint64_t workers =
      std::min<std::uint64_t>(opts.pool->size(), opts.shots);
  const std::uint64_t chunkSize = (opts.shots + workers - 1) / workers;
  std::mutex mergeMutex;
  std::optional<std::string> firstError;
  for (std::uint64_t w = 0; w < workers; ++w) {
    const std::uint64_t begin = w * chunkSize;
    const std::uint64_t end = std::min(opts.shots, begin + chunkSize);
    if (begin >= end) {
      break;
    }
    opts.pool->submit([&, begin, end] {
      ChunkResult chunk;
      try {
        runChunk(begin, end, chunk);
      } catch (const std::exception& e) {
        const std::lock_guard<std::mutex> lock(mergeMutex);
        if (!firstError.has_value()) {
          firstError = e.what();
        }
        return;
      }
      const std::lock_guard<std::mutex> lock(mergeMutex);
      for (const auto& [bits, count] : chunk.histogram) {
        result.histogram[bits] += count;
      }
    });
  }
  opts.pool->wait();
  if (firstError.has_value()) {
    throw TrapError(*firstError);
  }
  return result;
}

} // namespace qirkit::vm
