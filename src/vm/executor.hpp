/// \file executor.hpp
/// Batched shot execution: run a QIR module's entry point N times and
/// aggregate the recorded outputs into a histogram — the workload shape
/// the paper's execution route serves (one program, many sampled shots).
///
/// Two engines sit behind one interface: the bytecode VM (compile once
/// via the content-addressed cache, execute many; one Vm + one
/// QuantumRuntime per worker, reset between shots) and the tree-walking
/// interpreter (a fresh Interpreter + runtime per shot — the reference
/// semantics). Shot s always runs with seed `seed + s`, independent of
/// engine, thread count, and chunking, so histograms are reproducible
/// and engine-comparable bit for bit.
#pragma once

#include "ir/module.hpp"
#include "runtime/runtime.hpp"
#include "support/parallel.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <map>
#include <string>

namespace qirkit::vm {

enum class Engine { Interp, Vm };

[[nodiscard]] const char* engineName(Engine engine) noexcept;

struct ShotOptions {
  std::uint64_t shots = 100;
  std::uint64_t seed = 1;
  Engine engine = Engine::Vm;
  /// Worker pool for chunked shots; nullptr runs sequentially. Per-shot
  /// simulators never nest parallelism (their pool is always null).
  qirkit::ThreadPool* pool = nullptr;
  /// Route compilation through CompileCache::global() (VM engine only).
  bool useCompileCache = true;
};

struct ShotBatchResult {
  /// Recorded-output bit string -> occurrence count.
  std::map<std::string, std::uint64_t> histogram;
  /// Runtime / engine statistics of the final shot (shot shots-1); every
  /// shot of a given program executes the same way, so one is
  /// representative.
  runtime::RuntimeStats lastShotStats;
  interp::InterpStats lastShotEngineStats;
  /// Compile-cache activity attributable to this batch.
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
};

/// Run \p opts.shots shots of \p module's entry point. Throws TrapError
/// (with the failing shot's diagnostic) if any shot traps.
[[nodiscard]] ShotBatchResult runShots(const ir::Module& module,
                                       const ShotOptions& opts = {});

} // namespace qirkit::vm
