/// \file executor.hpp
/// Batched shot execution: run a QIR module's entry point N times and
/// aggregate the recorded outputs into a histogram — the workload shape
/// the paper's execution route serves (one program, many sampled shots).
///
/// Two engines sit behind one interface: the bytecode VM (compile once
/// via the content-addressed cache, execute many; one Vm + one
/// QuantumRuntime per worker, reset between shots) and the tree-walking
/// interpreter (a fresh Interpreter + runtime per shot — the reference
/// semantics). Shot s always runs with seed `seed + s`, independent of
/// engine, thread count, and chunking, so histograms are reproducible
/// and engine-comparable bit for bit.
///
/// Fault tolerance: a trapping shot no longer takes the batch down with
/// it. Each failure is classified through the structured error taxonomy
/// (support/error.hpp) and isolated to its shot; the batch records a
/// per-code failure histogram, retries transient faults with a fresh
/// derived seed (bounded by ShotOptions::retries), and only aborts when
/// more than ShotOptions::maxFailedShots shots fail permanently. On the
/// VM engine the executor additionally degrades gracefully to the
/// reference interpreter — for the whole batch when bytecode compilation
/// fails, and per shot when the VM traps where the interpreter does not
/// (a differential disagreement) — so `qirkit run` never produces a worse
/// answer than the reference engine.
#pragma once

#include "ir/module.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qirkit::telemetry {
class RequestTrace;
} // namespace qirkit::telemetry

namespace qirkit::vm {

class CompileCache;

enum class Engine { Interp, Vm };

[[nodiscard]] const char* engineName(Engine engine) noexcept;

/// How the batch turns one program into N shot outcomes.
///  * Resim — re-simulate the full program once per shot (the historical
///    behaviour, and the only sound strategy for feedback-dependent
///    programs).
///  * Sample — simulate once with deferred measurements and draw all N
///    shots from the final state. Requires the terminal-measurement
///    analysis (shot_analysis.hpp) to hold; forcing it on an
///    analysis-negative program is a usage error.
///  * Auto — Sample when the analysis proves it sound, Resim otherwise.
enum class ExecMode : std::uint8_t { Auto, Resim, Sample };

[[nodiscard]] const char* execModeName(ExecMode mode) noexcept;

struct ShotOptions {
  std::uint64_t shots = 100;
  std::uint64_t seed = 1;
  Engine engine = Engine::Vm;
  /// Worker pool for chunked shots; nullptr runs sequentially. The pool
  /// may be shared with other concurrent batches (the service multiplexes
  /// every tenant's chunks onto one pool) — the executor waits through a
  /// TaskGroup, never ThreadPool::wait(). Per-shot simulators never nest
  /// parallelism (their pool is always null).
  qirkit::ThreadPool* pool = nullptr;
  /// Route compilation through the compile cache (VM engine only).
  bool useCompileCache = true;
  /// The cache to route it through; nullptr means CompileCache::global().
  /// The service injects its own instance here so tenants share one
  /// cross-request cache that lives and dies with the daemon.
  CompileCache* cache = nullptr;
  /// Failure-rate threshold: the batch tolerates up to this many
  /// permanently failed shots (recorded, not thrown). One more and
  /// runShots throws the first recorded failure. 0 preserves the
  /// historical any-trap-aborts contract.
  std::uint64_t maxFailedShots = 0;
  /// Bounded retry budget per shot for *transient* faults (e.g. injected
  /// ones): each attempt reruns the shot with a fresh deterministically
  /// derived seed. Permanent faults are never retried.
  std::uint64_t retries = 0;
  /// VM engine only: when a shot traps on the VM, rerun it on the
  /// reference interpreter with the same seed before declaring it failed;
  /// when bytecode compilation fails, run the whole batch on the
  /// interpreter. Disable to surface raw VM behaviour (differential
  /// tests do).
  bool interpFallback = true;
  /// Shot delivery strategy (see ExecMode). Any fault inside the sampling
  /// path degrades to the per-shot resim machinery, mirroring the
  /// VM->interpreter fallback discipline.
  ExecMode execMode = ExecMode::Auto;
  /// VM engine only: run the compile-time gate-fusion pass (fusion.hpp).
  /// The CLI's --fusion=off escape hatch and the reference leg of the
  /// fused-vs-unfused differential tests set this to false.
  bool fusion = true;
  /// VM engine only: which dispatch loop to compile for (--dispatch).
  /// Threaded also enables the superinstruction peephole; Switch pins the
  /// reference code shape (plain opcode pairs, full per-step preamble) —
  /// the leg the dispatch differential tests compare against.
  DispatchMode dispatch = defaultDispatchMode();
  /// Amplitude storage width (sim/statevector.hpp). F32 halves memory
  /// traffic for sampling workloads; the per-gate rounding error it
  /// introduces accumulates with depth, so the executor rejects it for
  /// feedback-dependent programs (shot analysis negative) unless forceF32
  /// overrides — mid-circuit measurement probabilities would then steer
  /// control flow off rounded amplitudes.
  sim::Precision precision = sim::Precision::F64;
  /// Allow F32 even when the terminal-measurement analysis cannot prove
  /// the program feedback-free (the CLI's --force-f32).
  bool forceF32 = false;
  /// Cooperative cancellation/deadline token (nullptr: unbounded). Probed
  /// between shots, every kCancelStrideSteps VM/interpreter instructions,
  /// and at statevector sweep boundaries. Expiry stops the batch with
  /// partial results: runShots returns normally with deadlineExceeded set
  /// and the histogram restricted to shots that finished before the cut —
  /// it does not throw, and an aborted in-flight shot is counted as
  /// unstarted, never as failed. The token must outlive the call.
  const qirkit::CancelToken* cancel = nullptr;
  /// Request-scoped trace context (nullptr: none). When set, the batch
  /// records coarse per-stage wall times (compile with cache
  /// hit/miss/coalesced, analysis, sample vs resim execution) on the
  /// calling thread only — never inside the per-shot loop. Cost when
  /// null is one pointer check per stage. The trace must outlive the
  /// call.
  telemetry::RequestTrace* requestTrace = nullptr;
};

/// One permanently failed shot, classified.
struct ShotFailure {
  std::uint64_t shot = 0;
  ErrorCode code = ErrorCode::Internal;
  bool transient = false;
  std::string message;
};

struct ShotBatchResult {
  /// Recorded-output bit string -> occurrence count (successful shots).
  std::map<std::string, std::uint64_t> histogram;
  /// Runtime / engine statistics of the final shot (shot shots-1); every
  /// shot of a given program executes the same way, so one is
  /// representative. Left default when the final shot failed.
  runtime::RuntimeStats lastShotStats;
  interp::InterpStats lastShotEngineStats;
  /// Compile-cache activity attributable to this batch.
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;

  /// Shots that contributed an outcome to the histogram.
  std::uint64_t completedShots = 0;
  /// Shots that failed permanently (classified below).
  std::uint64_t failedShots = 0;
  /// Transient-fault retry attempts consumed across the batch.
  std::uint64_t retryAttempts = 0;
  /// VM shots rescued by the per-shot interpreter fallback.
  std::uint64_t interpFallbackShots = 0;
  /// The engine that actually executed the batch (Interp when a VM batch
  /// degraded because bytecode compilation failed).
  Engine engineUsed = Engine::Vm;
  bool degradedToInterp = false;
  std::string degradeReason;
  /// True when the batch was served by the terminal-measurement sampling
  /// path (one simulation, N sampled shots). False means per-shot resim —
  /// either by choice, because the analysis said feedback-dependent, or
  /// because the sampling path faulted (see sampleFallback).
  bool sampled = false;
  /// The sampling path was attempted but faulted, and the batch degraded
  /// to per-shot resim.
  bool sampleFallback = false;
  std::string sampleFallbackReason;
  /// The batch's cancellation token expired (deadline passed or cancel()
  /// called) before every shot ran. Partial-results contract: histogram
  /// and counters cover exactly the shots that completed before the cut.
  bool deadlineExceeded = false;
  /// Shots never attempted — or abandoned mid-flight — because the token
  /// expired. completedShots + failedShots + unstartedShots == shots.
  std::uint64_t unstartedShots = 0;
  /// Failure histogram: classified error code -> failed-shot count.
  std::map<ErrorCode, std::uint64_t> failureCounts;
  /// Detail records for the first kMaxFailureRecords failures (merge
  /// order across worker chunks is unspecified under a thread pool).
  std::vector<ShotFailure> failures;
  static constexpr std::size_t kMaxFailureRecords = 32;
};

/// The seed for retry attempt \p attempt (>= 1) of \p shot: drawn from a
/// SplitMix64 stream keyed on (base seed, shot, attempt), so retries are
/// reproducible but decorrelated from every first-attempt shot seed.
[[nodiscard]] std::uint64_t deriveRetrySeed(std::uint64_t baseSeed,
                                            std::uint64_t shot,
                                            std::uint64_t attempt) noexcept;

/// Run \p opts.shots shots of \p module's entry point. Throws TrapError
/// (carrying the first failing shot's classified diagnostic) only when
/// more than \p opts.maxFailedShots shots fail permanently; tolerated
/// failures are reported in the result instead.
[[nodiscard]] ShotBatchResult runShots(const ir::Module& module,
                                       const ShotOptions& opts = {});

} // namespace qirkit::vm
