#include "hybrid/hybrid.hpp"

#include "qir/names.hpp"

#include <set>

namespace qirkit::hybrid {

using namespace qirkit::ir;

const char* placementName(Placement placement) noexcept {
  switch (placement) {
  case Placement::Quantum: return "quantum";
  case Placement::ClassicalFeedback: return "classical-feedback";
  case Placement::ClassicalHost: return "classical-host";
  }
  return "<bad placement>";
}

LatencyModel LatencyModel::ionTrapCPU() {
  LatencyModel m;
  m.intOpNs = 1.0;
  m.mulNs = 3.0;
  m.divNs = 15.0;
  m.branchNs = 2.0;
  m.readResultNs = 100.0;
  m.supportsFloatingPoint = true;
  m.supportsMemory = true;
  m.floatOpNs = 5.0;
  m.memOpNs = 10.0;
  return m;
}

double LatencyModel::instructionCost(const Instruction& inst) const {
  switch (inst.op()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::ICmp:
  case Opcode::Select:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
  case Opcode::Bitcast:
  case Opcode::Phi:
    return intOpNs;
  case Opcode::Mul:
    return mulNs;
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
    return divNs;
  case Opcode::Br:
  case Opcode::Switch:
    return branchNs;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FRem:
  case Opcode::FCmp:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::UIToFP:
  case Opcode::FPToUI:
    return supportsFloatingPoint ? floatOpNs : -1.0;
  case Opcode::Alloca:
  case Opcode::Load:
  case Opcode::Store:
    return supportsMemory ? memOpNs : -1.0;
  case Opcode::Call: {
    const std::string& callee = inst.callee()->name();
    if (callee == qir::kQisReadResult) {
      return readResultNs;
    }
    if (qir::isQuantumFunction(callee)) {
      return 0.0; // executed by the QPU control stack, not the co-processor
    }
    return -1.0; // arbitrary classical calls cannot run on the co-processor
  }
  case Opcode::Ret:
  case Opcode::Unreachable:
    return 0.0;
  }
  return -1.0;
}

namespace {

const Function* entryOf(const Module& module) {
  const Function* entry = module.entryPoint();
  if (entry == nullptr) {
    entry = module.getFunction("main");
  }
  return entry;
}

bool isQisCall(const Instruction& inst) {
  return inst.op() == Opcode::Call && qir::isQisFunction(inst.callee()->name()) &&
         inst.callee()->name() != qir::kQisReadResult;
}

bool isReadResult(const Instruction& inst) {
  return inst.op() == Opcode::Call && inst.callee()->name() == qir::kQisReadResult;
}

/// Forward taint closure: every instruction whose value (transitively)
/// depends on a read_result.
std::set<const Instruction*> taintClosure(const Function& fn) {
  std::set<const Instruction*> tainted;
  std::vector<const Instruction*> worklist;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (isReadResult(*inst)) {
        tainted.insert(inst.get());
        worklist.push_back(inst.get());
      }
    }
  }
  while (!worklist.empty()) {
    const Instruction* inst = worklist.back();
    worklist.pop_back();
    for (const Use* use : inst->uses()) {
      if (const auto* user = dynamic_cast<const Instruction*>(use->user)) {
        if (tainted.insert(user).second) {
          worklist.push_back(user);
        }
      }
    }
  }
  return tainted;
}

/// True if any quantum instruction is reachable from \p start.
bool reachesQuantum(const BasicBlock* start,
                    const Instruction*& firstQuantum) {
  std::set<const BasicBlock*> visited;
  std::vector<const BasicBlock*> worklist{start};
  while (!worklist.empty()) {
    const BasicBlock* block = worklist.back();
    worklist.pop_back();
    if (!visited.insert(block).second) {
      continue;
    }
    for (const auto& inst : block->instructions()) {
      if (isQisCall(*inst)) {
        firstQuantum = inst.get();
        return true;
      }
    }
    for (const BasicBlock* succ : block->successors()) {
      worklist.push_back(succ);
    }
  }
  return false;
}

/// Backward slice of classical instructions feeding \p root (inclusive),
/// stopping at read_result reads.
std::vector<const Instruction*> backwardSlice(const Instruction* root) {
  std::set<const Instruction*> seen;
  std::vector<const Instruction*> order;
  std::vector<const Instruction*> worklist{root};
  while (!worklist.empty()) {
    const Instruction* inst = worklist.back();
    worklist.pop_back();
    if (!seen.insert(inst).second) {
      continue;
    }
    order.push_back(inst);
    if (isReadResult(*inst)) {
      continue; // path input; do not walk into the measurement itself
    }
    for (unsigned i = 0; i < inst->numOperands(); ++i) {
      if (const auto* op = dynamic_cast<const Instruction*>(inst->operand(i))) {
        worklist.push_back(op);
      }
    }
  }
  return order;
}

} // namespace

PartitionReport partitionHybrid(const Module& module) {
  PartitionReport report;
  const Function* entry = entryOf(module);
  if (entry == nullptr || entry->isDeclaration()) {
    return report;
  }
  const std::set<const Instruction*> tainted = taintClosure(*entry);
  for (const auto& block : entry->blocks()) {
    for (const auto& inst : block->instructions()) {
      Placement placement = Placement::ClassicalHost;
      if (isQisCall(*inst)) {
        placement = Placement::Quantum;
      } else if (tainted.count(inst.get()) != 0) {
        placement = Placement::ClassicalFeedback;
      }
      report.placements.emplace_back(inst.get(), placement);
      ++report.counts[placement];
    }
  }
  return report;
}

FeasibilityReport checkFeasibility(const Module& module, const LatencyModel& model,
                                   double coherenceBudgetNs) {
  FeasibilityReport report;
  report.coherenceBudgetNs = coherenceBudgetNs;
  const Function* entry = entryOf(module);
  if (entry == nullptr || entry->isDeclaration()) {
    return report;
  }
  const std::set<const Instruction*> tainted = taintClosure(*entry);

  for (const auto& block : entry->blocks()) {
    const Instruction* term = block->terminator();
    if (term == nullptr || tainted.count(term) == 0 || term->numSuccessors() == 0) {
      continue;
    }
    // A feedback decision: a branch whose condition depends on measurement
    // results. It matters only if quantum operations are downstream.
    const Instruction* firstQuantum = nullptr;
    bool gating = false;
    for (unsigned s = 0; s < term->numSuccessors() && !gating; ++s) {
      gating = reachesQuantum(term->successor(s), firstQuantum);
    }
    if (!gating) {
      continue; // host-side post-processing of results; no deadline
    }
    FeedbackPath path;
    path.dependentQuantum = firstQuantum;
    double latency = model.instructionCost(*term);
    for (const Instruction* inst : backwardSlice(term)) {
      if (inst == term) {
        continue;
      }
      if (isReadResult(*inst)) {
        path.readResult = inst;
        latency += model.readResultNs;
        continue;
      }
      const double cost = model.instructionCost(*inst);
      if (cost < 0) {
        path.supported = false;
        path.unsupportedReason = std::string("co-processor cannot execute '") +
                                 opcodeName(inst->op()) + "'";
      } else {
        latency += cost;
      }
      ++path.classicalOps;
    }
    path.classicalLatencyNs = latency;
    if (!path.supported) {
      report.feasible = false;
      report.reasons.push_back(path.unsupportedReason);
    } else if (latency > coherenceBudgetNs) {
      report.feasible = false;
      report.reasons.push_back(
          "feedback path needs " + std::to_string(latency) +
          " ns but the coherence budget is " + std::to_string(coherenceBudgetNs) +
          " ns");
    }
    report.worstPathNs = std::max(report.worstPathNs, latency);
    report.paths.push_back(std::move(path));
  }
  return report;
}

} // namespace qirkit::hybrid
