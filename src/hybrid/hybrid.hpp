/// \file hybrid.hpp
/// Hybrid classical-quantum analysis — the paper's §IV.B:
///
///  * partitionHybrid: "the question naturally arises for a hybrid
///    classical-quantum program … which part of the code should be
///    executed on the classical hardware and which part on the quantum
///    hardware." Instructions are classified as Quantum (qis calls),
///    ClassicalFeedback (classical code on a dependence path from a
///    measurement result to a quantum operation — it must run on the fast
///    co-processor), or ClassicalHost (everything else, offloadable to
///    ordinary classical hardware).
///
///  * checkFeasibility: "it must be ensured that the classical code
///    offloaded to the quantum hardware can be executed in the required
///    time frame to uphold the coherence of the qubits. Hence, … there
///    will always be programs that describe an infeasible execution and
///    must be rejected." A per-instruction latency model for the
///    co-processor bounds each measurement→gate feedback path; paths
///    exceeding the coherence budget are rejected, and paths containing
///    operations the co-processor cannot execute at all (floating point,
///    memory traffic, calls) are rejected outright.
#pragma once

#include "ir/module.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qirkit::hybrid {

/// Where an instruction must execute.
enum class Placement : std::uint8_t {
  Quantum,           // qis call: the QPU itself
  ClassicalFeedback, // classical, but on the latency-critical feedback path
  ClassicalHost,     // classical, no quantum deadline
};

[[nodiscard]] const char* placementName(Placement placement) noexcept;

/// Latency model of the classical co-processor (FPGA/ASIC-class), in
/// nanoseconds. Operations it cannot execute are marked unsupported.
struct LatencyModel {
  double intOpNs = 4.0;       // add/sub/logic/compare/select
  double mulNs = 8.0;
  double divNs = 40.0;
  double branchNs = 10.0;     // taken-branch/decision latency
  double readResultNs = 20.0; // measurement result transfer into the FPGA
  bool supportsFloatingPoint = false; // §IV.B: special-purpose hardware
  bool supportsMemory = false;        // no stack/heap on the co-processor
  double floatOpNs = 50.0;    // used only when supportsFloatingPoint
  double memOpNs = 30.0;      // used only when supportsMemory

  /// Latency of one instruction; negative if unsupported on the
  /// co-processor.
  [[nodiscard]] double instructionCost(const ir::Instruction& inst) const;

  /// A typical superconducting-stack model (fast FPGA, no FP, no memory).
  static LatencyModel superconductingFPGA() { return {}; }
  /// A trapped-ion-style model: much slower gates, so a relaxed
  /// co-processor (CPU-class, FP and memory allowed) still fits.
  static LatencyModel ionTrapCPU();
};

/// Partition of one function.
struct PartitionReport {
  std::map<Placement, std::size_t> counts;
  /// Placement of every instruction (parallel to iteration order).
  std::vector<std::pair<const ir::Instruction*, Placement>> placements;

  [[nodiscard]] std::size_t count(Placement placement) const {
    const auto it = counts.find(placement);
    return it == counts.end() ? 0 : it->second;
  }
};

/// Classify every instruction of the entry point (or @main).
[[nodiscard]] PartitionReport partitionHybrid(const ir::Module& module);

/// One measurement-to-gate feedback path.
struct FeedbackPath {
  const ir::Instruction* readResult = nullptr;    // the measurement read
  const ir::Instruction* dependentQuantum = nullptr; // first gated quantum op
  double classicalLatencyNs = 0;
  std::size_t classicalOps = 0;
  bool supported = true;      // co-processor can execute the path at all
  std::string unsupportedReason;
};

struct FeasibilityReport {
  bool feasible = true;
  double coherenceBudgetNs = 0;
  double worstPathNs = 0;
  std::vector<FeedbackPath> paths;
  std::vector<std::string> reasons; // why rejected (empty if feasible)
};

/// Check every feedback path of the entry point against the coherence
/// budget under \p model. Programs with no feedback are trivially
/// feasible.
[[nodiscard]] FeasibilityReport checkFeasibility(const ir::Module& module,
                                                 const LatencyModel& model,
                                                 double coherenceBudgetNs);

} // namespace qirkit::hybrid
