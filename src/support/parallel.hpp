/// \file parallel.hpp
/// A small thread pool, a per-batch TaskGroup, and a blocking parallel_for
/// built on top of them. The statevector simulator uses this to parallelize
/// gate kernels; the shot executor uses it to multiplex shot chunks; all
/// other modules are single-threaded by design (compiler passes mutate
/// shared IR).
///
/// Sharing discipline: a ThreadPool may serve many concurrent batches (the
/// service runs every tenant's shot chunks on one pool). Waiting therefore
/// happens through TaskGroup, which tracks only its own submissions —
/// ThreadPool::wait() drains the *whole* pool and is only correct for an
/// exclusively-owned pool. Never wait on a group from inside a pool worker:
/// the waited-for tasks may be queued behind the waiter (the executor keeps
/// per-shot simulators pool-free for exactly this reason).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qirkit {

/// Fixed-size thread pool. Tasks are arbitrary callables; submission is
/// thread-safe. Destruction drains outstanding tasks before joining.
class ThreadPool {
public:
  /// Create a pool with \p numThreads workers. 0 means
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished — across *all* clients
  /// of the pool. Prefer TaskGroup::wait() whenever the pool is shared.
  void wait();

  /// Process-wide pool. Created on first use, sized to the hardware unless
  /// configureGlobal() ran first.
  static ThreadPool& global();

  /// Set the size of the process-wide pool before anything touches it.
  /// Returns false (and changes nothing) once global() has been created —
  /// callers that need an exact size after that point own a pool instead.
  static bool configureGlobal(std::size_t numThreads);

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskAvailable_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

/// One batch's handle on a shared pool: counts its own submissions so
/// wait() returns when *this group's* tasks are done, regardless of what
/// other batches have in flight. A group may be reused after wait().
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  [[nodiscard]] ThreadPool& pool() const noexcept { return pool_; }

  /// Enqueue \p task on the underlying pool, tracked by this group.
  void submit(std::function<void()> task);

  /// Block until every task submitted through this group has finished.
  void wait();

private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
};

/// Run `body(begin, end)` over [0, n) split into contiguous chunks, one per
/// worker, blocking until all chunks complete. Falls back to a direct call
/// when the range is small or the pool has a single worker. Waits through a
/// TaskGroup, so concurrent callers can share \p pool without observing
/// each other's work.
void parallelForChunked(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        std::size_t grainSize = 1024);

} // namespace qirkit
