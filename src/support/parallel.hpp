/// \file parallel.hpp
/// A small thread pool and a blocking parallel_for built on top of it.
/// The statevector simulator uses this to parallelize gate kernels; all
/// other modules are single-threaded by design (compiler passes mutate
/// shared IR).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qirkit {

/// Fixed-size thread pool. Tasks are arbitrary callables; submission is
/// thread-safe. Destruction drains outstanding tasks before joining.
class ThreadPool {
public:
  /// Create a pool with \p numThreads workers. 0 means
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

  /// Process-wide pool, sized to the hardware. Created on first use.
  static ThreadPool& global();

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskAvailable_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

/// Run `body(begin, end)` over [0, n) split into contiguous chunks, one per
/// worker, blocking until all chunks complete. Falls back to a direct call
/// when the range is small or the pool has a single worker.
void parallelForChunked(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        std::size_t grainSize = 1024);

} // namespace qirkit
