/// \file trace.hpp
/// RAII trace spans emitting Chrome trace-event JSON ("Trace Event
/// Format", complete "X" events) loadable in Perfetto or
/// chrome://tracing. Spans nest naturally per thread: parse → opt →
/// compile → execute show up as a flame chart.
///
/// Tracing is armed by the CLI from the QIRKIT_TRACE=<file> environment
/// variable (or programmatically via begin()). The probe-cost discipline
/// matches telemetry counters: a Span constructed while tracing is
/// disabled costs one relaxed atomic load and stores nothing. Events are
/// buffered in memory (bounded; drops are counted) and written by
/// flush() — call it once at process/tool exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace qirkit::telemetry::trace {

namespace detail {
[[nodiscard]] std::atomic<bool>& enabledFlag() noexcept;
void endSpan(std::string&& name, std::uint64_t startNs) noexcept;
} // namespace detail

[[nodiscard]] inline bool enabled() noexcept {
  return detail::enabledFlag().load(std::memory_order_relaxed);
}

/// Arm tracing; events will be written to \p path by flush().
void begin(std::string path);

/// Arm from QIRKIT_TRACE when set. Returns true when tracing was armed.
bool initFromEnv();

/// Write the buffered events as Chrome trace JSON and disarm. Safe to
/// call when tracing was never armed (no-op). Returns false when the
/// output file cannot be written.
bool flush();

/// Number of events dropped because the in-memory buffer was full.
[[nodiscard]] std::uint64_t droppedEvents() noexcept;

/// Record an already-measured span retroactively, optionally tagged with
/// a Chrome-trace "args" object (\p argsJson must be a pre-rendered JSON
/// object, e.g. {"request_id":"r-1","tenant":"acme"}; empty = no args).
/// Used by the request-trace layer to emit per-stage spans after the
/// request finished. Costs one relaxed atomic load while tracing is
/// disarmed.
void emitSpan(std::string_view name, std::uint64_t startNs, std::uint64_t durNs,
              std::string_view argsJson = {});

/// One traced region. The name is captured by value so dynamically built
/// names (pass names) are safe.
class Span {
public:
  explicit Span(std::string_view name)
      : start_(enabled() ? nowNsOrZero() : 0) {
    if (start_ != 0) {
      name_ = name;
    }
  }
  ~Span() {
    if (start_ != 0) {
      detail::endSpan(std::move(name_), start_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

private:
  [[nodiscard]] static std::uint64_t nowNsOrZero() noexcept;

  std::string name_;
  std::uint64_t start_ = 0;
};

} // namespace qirkit::telemetry::trace
