/// \file telemetry.hpp
/// Process-wide observability registry: counters, max-gauges, and
/// latency histograms, named with dotted paths ("vm.cache.hits") that
/// become the nesting of the machine-readable `--stats` report.
///
/// Probe-cost discipline (shared with support/faultinject.hpp): every
/// probe is gated on a single process-wide flag read with one relaxed
/// atomic load. Disabled telemetry therefore costs one predictable
/// branch per probe — no clock reads, no atomics RMW, no locks — so the
/// instrumentation can live permanently in hot paths (VM dispatch, gate
/// kernels, per-shot bookkeeping). Hot loops additionally cache the flag
/// per call frame, exactly as the VM caches the fault-injection flag.
///
/// Metrics register themselves with the registry at static
/// initialization; the registry renders them either as a human-readable
/// table (`statsText`) or as versioned JSON (`statsJson`,
/// kStatsSchemaVersion) for the CLI's `--stats[=text|json]` flag and the
/// bench harness's BENCH_<name>.json artifacts.
#pragma once

#include "support/error.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qirkit::telemetry {

/// Version of the JSON document emitted by statsJson / the bench
/// artifacts ("schema_version" field). Bump on breaking shape changes.
inline constexpr int kStatsSchemaVersion = 1;

namespace detail {
/// The process-wide enabled flag every probe gates on.
[[nodiscard]] std::atomic<bool>& enabledFlag() noexcept;
} // namespace detail

/// One relaxed atomic load: the per-probe cost when telemetry is off.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::enabledFlag().load(std::memory_order_relaxed);
}

/// Arm / disarm every probe in the process.
void setEnabled(bool on) noexcept;

/// Zero every registered metric and the dynamic per-pass records.
void resetAll();

/// Monotonic nanoseconds (steady clock) — the time base of every latency
/// metric and trace span.
[[nodiscard]] inline std::uint64_t nowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// -- metrics ------------------------------------------------------------------

/// Monotonically increasing event count. Thread-safe; `add` is a no-op
/// (one relaxed load) while telemetry is disabled.
class Counter {
public:
  explicit Counter(const char* name);

  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  /// Unconditional add for call sites already under an enabled() check.
  void addUnchecked(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] const char* name() const noexcept { return name_; }

private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

/// High-watermark gauge (e.g. peak statevector bytes). Thread-safe.
class MaxGauge {
public:
  explicit MaxGauge(const char* name);

  void updateMax(std::uint64_t v) noexcept {
    if (!enabled()) {
      return;
    }
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] const char* name() const noexcept { return name_; }

private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Tag type for metrics that must not self-register with the process
/// registry — the labeled families below own per-label histograms whose
/// lifetime is the family's, not the process's.
struct Unregistered {};

/// Latency histogram with power-of-two nanosecond buckets: bucket i
/// counts samples in [2^i, 2^(i+1)); sub-nanosecond samples land in
/// bucket 0. Tracks count/sum/min/max exactly and serves approximate
/// quantiles (upper bucket bound) from the buckets. Thread-safe.
class LatencyHistogram {
public:
  static constexpr std::size_t kBuckets = 48; // up to ~78 hours in ns

  explicit LatencyHistogram(const char* name);
  /// Non-registering constructor for family-owned member histograms.
  LatencyHistogram(const char* name, Unregistered) noexcept : name_(name) {}

  void record(std::uint64_t ns) noexcept {
    if (enabled()) {
      recordUnchecked(ns);
    }
  }
  void recordUnchecked(std::uint64_t ns) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Approximate p-quantile (0 < p <= 1): the upper bound of the bucket
  /// containing the p*count-th sample; 0 when empty.
  [[nodiscard]] std::uint64_t quantileNs(double p) const noexcept;
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept;
  [[nodiscard]] const char* name() const noexcept { return name_; }

private:
  const char* name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Bounded-cardinality counter family dimensioned by one label value
/// (e.g. tenant). At most `maxLabels` label values are live at once;
/// inserting past the bound evicts the least-recently-updated label and
/// counts the eviction, so hostile label churn (a tenant per request)
/// cannot grow memory or the metrics document without bound.
///
/// Probe cost matches the registry discipline: one relaxed atomic load
/// when telemetry is disabled. An *enabled* update takes the family
/// mutex, which confines labeled metrics to request-cadence call sites
/// (admission, job completion) — never per-shot paths (DESIGN 7f).
class LabeledCounter {
public:
  static constexpr std::size_t kDefaultMaxLabels = 32;

  /// \p labelKey names the dimension ("tenant") in exports that carry
  /// label keys (Prometheus exposition).
  explicit LabeledCounter(const char* name,
                          std::size_t maxLabels = kDefaultMaxLabels,
                          const char* labelKey = "label");

  void add(std::string_view label, std::uint64_t n = 1);

  /// Value for one label; 0 when the label is absent (never seen or
  /// evicted).
  [[nodiscard]] std::uint64_t value(std::string_view label) const;
  /// Live labels with their values, label-sorted.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> values() const;
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t maxLabels() const noexcept { return maxLabels_; }
  void reset();
  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] const char* labelKey() const noexcept { return labelKey_; }

private:
  struct Entry {
    std::uint64_t value = 0;
    std::uint64_t lastTick = 0;
  };

  const char* name_;
  const char* labelKey_;
  std::size_t maxLabels_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::uint64_t tick_ = 0;
  std::atomic<std::uint64_t> evictions_{0};
};

/// Bounded-cardinality latency-histogram family dimensioned by one
/// label. Same eviction policy, probe gating, and call-site discipline
/// as LabeledCounter; each live label owns a full LatencyHistogram so
/// per-label quantiles (p50/p95/p99) are available.
class LabeledHistogram {
public:
  static constexpr std::size_t kDefaultMaxLabels = 32;

  explicit LabeledHistogram(const char* name,
                            std::size_t maxLabels = kDefaultMaxLabels,
                            const char* labelKey = "label");

  void record(std::string_view label, std::uint64_t ns);

  /// Visit each live label's histogram under the family lock,
  /// label-sorted. \p fn must not re-enter the family.
  void forEach(const std::function<void(const std::string&,
                                        const LatencyHistogram&)>& fn) const;
  [[nodiscard]] std::vector<std::string> labels() const;
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t maxLabels() const noexcept { return maxLabels_; }
  void reset();
  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] const char* labelKey() const noexcept { return labelKey_; }

private:
  struct Entry {
    std::unique_ptr<LatencyHistogram> hist;
    std::uint64_t lastTick = 0;
  };

  const char* name_;
  const char* labelKey_;
  std::size_t maxLabels_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
  std::uint64_t tick_ = 0;
  std::atomic<std::uint64_t> evictions_{0};
};

/// RAII wall-clock probe: adds the elapsed nanoseconds to \p nsCounter
/// (and bumps \p callsCounter) on destruction. Inert — no clock read —
/// while telemetry is disabled.
class ScopedTimer {
public:
  explicit ScopedTimer(Counter& nsCounter, Counter* callsCounter = nullptr) noexcept
      : ns_(nsCounter), calls_(callsCounter), start_(enabled() ? nowNs() : 0) {}
  ~ScopedTimer() {
    if (start_ != 0) {
      ns_.addUnchecked(nowNs() - start_);
      if (calls_ != nullptr) {
        calls_->addUnchecked(1);
      }
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
  Counter& ns_;
  Counter* calls_;
  std::uint64_t start_;
};

// -- dynamic records ----------------------------------------------------------

/// Accumulated statistics of one named optimization pass, merged across
/// sweeps and PassManager instances in first-run order.
struct PassRecord {
  std::string name;
  std::uint64_t invocations = 0;
  std::uint64_t changes = 0; ///< pipeline entries that reported a change
  std::uint64_t ns = 0;
  /// Net IR growth across all runs: sum of (instructions after -
  /// instructions before). Negative for shrinking passes like DCE.
  std::int64_t irDelta = 0;
};

/// Record one pass execution (PassManager calls this only while enabled).
void recordPassRun(std::string_view name, std::uint64_t ns, bool changed,
                   std::uint64_t irBefore, std::uint64_t irAfter);
[[nodiscard]] std::vector<PassRecord> passRecords();

/// Count a permanently failed shot by classified error code.
void recordShotFailure(ErrorCode code) noexcept;
[[nodiscard]] std::uint64_t shotFailureCount(ErrorCode code) noexcept;

// -- snapshot & reports -------------------------------------------------------

/// A point-in-time copy of every registered metric, cheap enough to take
/// per request: the service's metrics endpoint and per-request deltas are
/// built from two of these, and tests assert on diffs instead of absolute
/// process-lifetime totals.
struct Snapshot {
  struct Scalar {
    std::string name;
    std::uint64_t value = 0;
    /// Counters are monotonic (diff subtracts); gauges are high-watermarks
    /// (diff keeps the later value).
    bool monotonic = true;
  };
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sumNs = 0;
  };
  std::vector<Scalar> scalars; // counters then gauges, registration order
  std::vector<Hist> histograms;

  /// Value of a scalar by dotted name; 0 when absent.
  [[nodiscard]] std::uint64_t value(std::string_view name) const noexcept;
};

/// Copy the registry's current values (one relaxed load per metric).
[[nodiscard]] Snapshot snapshot();

/// Per-metric delta `after - before`: counters and histogram counts/sums
/// subtract (metrics absent in \p before count from zero); gauges keep the
/// \p after value, since a high-watermark cannot be meaningfully
/// subtracted. Metrics absent in \p after are dropped.
[[nodiscard]] Snapshot diff(const Snapshot& before, const Snapshot& after);

/// Flat JSON rendering of a snapshot — {"vm.cache.hits":3,...} plus
/// "<name>.count"/"<name>.sum_ns" per histogram — used for the service's
/// per-request metrics deltas. Zero-valued entries are omitted so a
/// request's delta stays proportional to what it actually did.
[[nodiscard]] std::string snapshotJson(const Snapshot& snap);

/// Value of a registered counter/gauge by dotted name; 0 when the metric
/// has not been registered (nothing linked in / nothing ran).
[[nodiscard]] std::uint64_t counterValue(std::string_view name) noexcept;
/// Registered histogram by name; nullptr when absent.
[[nodiscard]] const LatencyHistogram* findHistogram(std::string_view name) noexcept;

/// Every registered metric of the given kind, in registration order.
/// For exporters (Prometheus text exposition) that need bucket-level or
/// per-label data a Snapshot does not carry. Pointers refer to
/// static-storage metrics and never dangle.
[[nodiscard]] std::vector<const LatencyHistogram*> allHistograms();
[[nodiscard]] std::vector<const LabeledCounter*> allLabeledCounters();
[[nodiscard]] std::vector<const LabeledHistogram*> allLabeledHistograms();

/// The versioned machine-readable report (see README "Observability" for
/// the schema): dotted metric names become nested objects, plus the
/// "passes" array and the "shots.failure_counts" object. \p command
/// labels the producing subcommand ("run", "bench:execute", ...).
[[nodiscard]] std::string statsJson(std::string_view command);

/// Human-readable rendering of the same data.
[[nodiscard]] std::string statsText();

/// Minimal JSON string escaping (used by the trace writer and the bench
/// harness as well).
[[nodiscard]] std::string jsonEscape(std::string_view s);

} // namespace qirkit::telemetry
