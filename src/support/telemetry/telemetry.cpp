#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

namespace qirkit::telemetry {

namespace detail {

std::atomic<bool>& enabledFlag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

} // namespace detail

namespace {

constexpr std::size_t kNumErrorCodes =
    static_cast<std::size_t>(ErrorCode::Internal) + 1;

/// Registration lists. Metrics have static storage duration and register
/// themselves on construction; the mutex-guarded vectors inside a
/// function-local struct sidestep static-initialization-order hazards.
struct Registry {
  std::mutex mutex;
  std::vector<Counter*> counters;
  std::vector<MaxGauge*> gauges;
  std::vector<LatencyHistogram*> histograms;
  std::vector<LabeledCounter*> labeledCounters;
  std::vector<LabeledHistogram*> labeledHistograms;

  std::mutex passMutex;
  std::vector<PassRecord> passes; // first-run order, merged by name

  std::array<std::atomic<std::uint64_t>, kNumErrorCodes> shotFailures{};

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

} // namespace

Counter::Counter(const char* name) : name_(name) {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.counters.push_back(this);
}

MaxGauge::MaxGauge(const char* name) : name_(name) {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.gauges.push_back(this);
}

LatencyHistogram::LatencyHistogram(const char* name) : name_(name) {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.histograms.push_back(this);
}

LabeledCounter::LabeledCounter(const char* name, std::size_t maxLabels,
                               const char* labelKey)
    : name_(name), labelKey_(labelKey), maxLabels_(maxLabels == 0 ? 1 : maxLabels) {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.labeledCounters.push_back(this);
}

void LabeledCounter::add(std::string_view label, std::uint64_t n) {
  if (!enabled()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(label);
  if (it != entries_.end()) {
    it->second.value += n;
    it->second.lastTick = ++tick_;
    return;
  }
  if (entries_.size() >= maxLabels_) {
    // Evict the least-recently-updated label. O(labels) scan, but only
    // on insert past the bound — steady-state tenant sets never pay it.
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.lastTick < victim->second.lastTick) {
        victim = cand;
      }
    }
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  entries_.emplace(std::string(label), Entry{n, ++tick_});
}

std::uint64_t LabeledCounter::value(std::string_view label) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(label);
  return it == entries_.end() ? 0 : it->second.value;
}

std::vector<std::pair<std::string, std::uint64_t>> LabeledCounter::values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(entries_.size());
  for (const auto& [label, entry] : entries_) {
    out.emplace_back(label, entry.value);
  }
  return out;
}

void LabeledCounter::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  tick_ = 0;
  evictions_.store(0, std::memory_order_relaxed);
}

LabeledHistogram::LabeledHistogram(const char* name, std::size_t maxLabels,
                                   const char* labelKey)
    : name_(name), labelKey_(labelKey), maxLabels_(maxLabels == 0 ? 1 : maxLabels) {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.labeledHistograms.push_back(this);
}

void LabeledHistogram::record(std::string_view label, std::uint64_t ns) {
  if (!enabled()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(label);
  if (it == entries_.end()) {
    if (entries_.size() >= maxLabels_) {
      auto victim = entries_.begin();
      for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
        if (cand->second.lastTick < victim->second.lastTick) {
          victim = cand;
        }
      }
      entries_.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    it = entries_
             .emplace(std::string(label),
                      Entry{std::make_unique<LatencyHistogram>(name_, Unregistered{}), 0})
             .first;
  }
  it->second.lastTick = ++tick_;
  it->second.hist->recordUnchecked(ns);
}

void LabeledHistogram::forEach(
    const std::function<void(const std::string&, const LatencyHistogram&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [label, entry] : entries_) {
    fn(label, *entry.hist);
  }
}

std::vector<std::string> LabeledHistogram::labels() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [label, entry] : entries_) {
    out.push_back(label);
  }
  return out;
}

void LabeledHistogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  tick_ = 0;
  evictions_.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::recordUnchecked(std::uint64_t ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  std::size_t bucket = 0;
  while (bucket + 1 < kBuckets && (std::uint64_t{1} << (bucket + 1)) <= ns) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::min() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~std::uint64_t{0} ? 0 : v;
}

std::uint64_t LatencyHistogram::quantileNs(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank || seen == total) {
      // Upper bucket bound, clamped to the exact observed max.
      const std::uint64_t bound = std::uint64_t{1} << std::min<std::size_t>(i + 1, 63);
      return std::min(bound, max());
    }
  }
  return max();
}

void LatencyHistogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

void setEnabled(bool on) noexcept {
  detail::enabledFlag().store(on, std::memory_order_relaxed);
}

void resetAll() {
  Registry& r = Registry::instance();
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (Counter* c : r.counters) {
      c->reset();
    }
    for (MaxGauge* g : r.gauges) {
      g->reset();
    }
    for (LatencyHistogram* h : r.histograms) {
      h->reset();
    }
    for (LabeledCounter* c : r.labeledCounters) {
      c->reset();
    }
    for (LabeledHistogram* h : r.labeledHistograms) {
      h->reset();
    }
  }
  {
    const std::lock_guard<std::mutex> lock(r.passMutex);
    r.passes.clear();
  }
  for (auto& f : r.shotFailures) {
    f.store(0, std::memory_order_relaxed);
  }
}

void recordPassRun(std::string_view name, std::uint64_t ns, bool changed,
                   std::uint64_t irBefore, std::uint64_t irAfter) {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.passMutex);
  for (PassRecord& rec : r.passes) {
    if (rec.name == name) {
      ++rec.invocations;
      rec.changes += changed ? 1 : 0;
      rec.ns += ns;
      rec.irDelta += static_cast<std::int64_t>(irAfter) -
                     static_cast<std::int64_t>(irBefore);
      return;
    }
  }
  PassRecord rec;
  rec.name = std::string(name);
  rec.invocations = 1;
  rec.changes = changed ? 1 : 0;
  rec.ns = ns;
  rec.irDelta =
      static_cast<std::int64_t>(irAfter) - static_cast<std::int64_t>(irBefore);
  r.passes.push_back(std::move(rec));
}

std::vector<PassRecord> passRecords() {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.passMutex);
  return r.passes;
}

void recordShotFailure(ErrorCode code) noexcept {
  const auto i = static_cast<std::size_t>(code);
  if (i < kNumErrorCodes) {
    Registry::instance().shotFailures[i].fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t shotFailureCount(ErrorCode code) noexcept {
  const auto i = static_cast<std::size_t>(code);
  return i < kNumErrorCodes
             ? Registry::instance().shotFailures[i].load(std::memory_order_relaxed)
             : 0;
}

std::uint64_t Snapshot::value(std::string_view name) const noexcept {
  for (const Scalar& s : scalars) {
    if (s.name == name) {
      return s.value;
    }
  }
  return 0;
}

Snapshot snapshot() {
  Registry& r = Registry::instance();
  Snapshot snap;
  const std::lock_guard<std::mutex> lock(r.mutex);
  snap.scalars.reserve(r.counters.size() + r.gauges.size());
  for (const Counter* c : r.counters) {
    snap.scalars.push_back({c->name(), c->value(), /*monotonic=*/true});
  }
  for (const MaxGauge* g : r.gauges) {
    snap.scalars.push_back({g->name(), g->value(), /*monotonic=*/false});
  }
  snap.histograms.reserve(r.histograms.size());
  for (const LatencyHistogram* h : r.histograms) {
    snap.histograms.push_back({h->name(), h->count(), h->sum()});
  }
  return snap;
}

Snapshot diff(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  out.scalars.reserve(after.scalars.size());
  for (const Snapshot::Scalar& s : after.scalars) {
    std::uint64_t base = 0;
    if (s.monotonic) {
      for (const Snapshot::Scalar& b : before.scalars) {
        if (b.name == s.name) {
          base = b.value;
          break;
        }
      }
    }
    // A reset between the snapshots can make a counter go backwards;
    // clamp so the delta never underflows into garbage.
    out.scalars.push_back(
        {s.name, s.value >= base ? s.value - base : s.value, s.monotonic});
  }
  out.histograms.reserve(after.histograms.size());
  for (const Snapshot::Hist& h : after.histograms) {
    std::uint64_t baseCount = 0;
    std::uint64_t baseSum = 0;
    for (const Snapshot::Hist& b : before.histograms) {
      if (b.name == h.name) {
        baseCount = b.count;
        baseSum = b.sumNs;
        break;
      }
    }
    out.histograms.push_back(
        {h.name, h.count >= baseCount ? h.count - baseCount : h.count,
         h.sumNs >= baseSum ? h.sumNs - baseSum : h.sumNs});
  }
  return out;
}

std::string snapshotJson(const Snapshot& snap) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  const auto emit = [&](const std::string& name, std::uint64_t value) {
    if (value == 0) {
      return;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << jsonEscape(name) << "\":" << value;
  };
  for (const Snapshot::Scalar& s : snap.scalars) {
    emit(s.name, s.value);
  }
  for (const Snapshot::Hist& h : snap.histograms) {
    emit(h.name + ".count", h.count);
    emit(h.name + ".sum_ns", h.sumNs);
  }
  out << "}";
  return out.str();
}

std::uint64_t counterValue(std::string_view name) noexcept {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const Counter* c : r.counters) {
    if (name == c->name()) {
      return c->value();
    }
  }
  for (const MaxGauge* g : r.gauges) {
    if (name == g->name()) {
      return g->value();
    }
  }
  return 0;
}

const LatencyHistogram* findHistogram(std::string_view name) noexcept {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const LatencyHistogram* h : r.histograms) {
    if (name == h->name()) {
      return h;
    }
  }
  return nullptr;
}

std::vector<const LatencyHistogram*> allHistograms() {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return {r.histograms.begin(), r.histograms.end()};
}

std::vector<const LabeledCounter*> allLabeledCounters() {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return {r.labeledCounters.begin(), r.labeledCounters.end()};
}

std::vector<const LabeledHistogram*> allLabeledHistograms() {
  Registry& r = Registry::instance();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return {r.labeledHistograms.begin(), r.labeledHistograms.end()};
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

namespace {

/// Tree of dotted metric names: "vm.cache.hits" nests hits under cache
/// under vm. Leaves hold pre-rendered JSON fragments.
struct Node {
  std::map<std::string, Node> children;
  std::string leaf; // rendered JSON when non-empty
};

void insert(Node& root, std::string_view path, std::string leafJson) {
  Node* node = &root;
  while (true) {
    const auto dot = path.find('.');
    if (dot == std::string_view::npos) {
      node = &node->children[std::string(path)];
      break;
    }
    node = &node->children[std::string(path.substr(0, dot))];
    path = path.substr(dot + 1);
  }
  node->leaf = std::move(leafJson);
}

void render(const Node& node, std::ostringstream& out) {
  if (!node.leaf.empty()) {
    out << node.leaf;
    return;
  }
  out << "{";
  bool first = true;
  for (const auto& [key, child] : node.children) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << jsonEscape(key) << "\":";
    render(child, out);
  }
  out << "}";
}

std::string histogramJson(const LatencyHistogram& h) {
  std::ostringstream out;
  out << "{\"count\":" << h.count() << ",\"sum_ns\":" << h.sum()
      << ",\"min_ns\":" << h.min() << ",\"max_ns\":" << h.max()
      << ",\"p50_ns\":" << h.quantileNs(0.50)
      << ",\"p90_ns\":" << h.quantileNs(0.90)
      << ",\"p95_ns\":" << h.quantileNs(0.95)
      << ",\"p99_ns\":" << h.quantileNs(0.99) << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t n = h.bucketCount(i);
    if (n == 0) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"le_ns\":" << (std::uint64_t{1} << std::min<std::size_t>(i + 1, 63))
        << ",\"count\":" << n << "}";
  }
  out << "]}";
  return out.str();
}

/// A labeled family renders as one leaf object so label values holding
/// dots are never split by the dotted-name nesting:
/// {"labels":{"tenant-a":...},"evicted":N}.
std::string labeledCounterJson(const LabeledCounter& c) {
  std::ostringstream out;
  out << "{\"labels\":{";
  bool first = true;
  for (const auto& [label, value] : c.values()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << jsonEscape(label) << "\":" << value;
  }
  out << "},\"evicted\":" << c.evictions() << "}";
  return out.str();
}

std::string labeledHistogramJson(const LabeledHistogram& h) {
  std::ostringstream out;
  out << "{\"labels\":{";
  bool first = true;
  h.forEach([&](const std::string& label, const LatencyHistogram& hist) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << jsonEscape(label) << "\":" << histogramJson(hist);
  });
  out << "},\"evicted\":" << h.evictions() << "}";
  return out.str();
}

std::string passesJson() {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const PassRecord& rec : passRecords()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"" << jsonEscape(rec.name)
        << "\",\"invocations\":" << rec.invocations
        << ",\"changes\":" << rec.changes << ",\"ns\":" << rec.ns
        << ",\"ir_delta\":" << rec.irDelta << "}";
  }
  out << "]";
  return out.str();
}

std::string shotFailuresJson() {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (std::size_t i = 0; i < kNumErrorCodes; ++i) {
    const std::uint64_t n = shotFailureCount(static_cast<ErrorCode>(i));
    if (n == 0) {
      continue;
    }
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << errorCodeName(static_cast<ErrorCode>(i)) << "\":" << n;
  }
  out << "}";
  return out.str();
}

} // namespace

std::string statsJson(std::string_view command) {
  Registry& r = Registry::instance();
  Node root;
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (const Counter* c : r.counters) {
      insert(root, c->name(), std::to_string(c->value()));
    }
    for (const MaxGauge* g : r.gauges) {
      insert(root, g->name(), std::to_string(g->value()));
    }
    for (const LatencyHistogram* h : r.histograms) {
      insert(root, h->name(), histogramJson(*h));
    }
    for (const LabeledCounter* c : r.labeledCounters) {
      insert(root, c->name(), labeledCounterJson(*c));
    }
    for (const LabeledHistogram* h : r.labeledHistograms) {
      insert(root, h->name(), labeledHistogramJson(*h));
    }
  }
  insert(root, "passes", passesJson());
  insert(root, "shots.failure_counts", shotFailuresJson());

  std::ostringstream out;
  out << "{\"schema_version\":" << kStatsSchemaVersion << ",\"tool\":\"qirkit\""
      << ",\"command\":\"" << jsonEscape(command) << "\",";
  bool first = true;
  for (const auto& [key, child] : root.children) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << jsonEscape(key) << "\":";
    render(child, out);
  }
  out << "}";
  return out.str();
}

std::string statsText() {
  Registry& r = Registry::instance();
  std::ostringstream out;
  out << "-- qirkit telemetry (schema v" << kStatsSchemaVersion << ") --\n";
  std::vector<std::pair<std::string, std::uint64_t>> scalars;
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (const Counter* c : r.counters) {
      scalars.emplace_back(c->name(), c->value());
    }
    for (const MaxGauge* g : r.gauges) {
      scalars.emplace_back(g->name(), g->value());
    }
  }
  std::sort(scalars.begin(), scalars.end());
  for (const auto& [name, value] : scalars) {
    out << name << " = " << value << "\n";
  }
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    for (const LatencyHistogram* h : r.histograms) {
      out << h->name() << ": count=" << h->count() << " sum=" << h->sum()
          << "ns min=" << h->min() << "ns p50~" << h->quantileNs(0.5)
          << "ns p95~" << h->quantileNs(0.95) << "ns p99~" << h->quantileNs(0.99)
          << "ns max=" << h->max() << "ns\n";
    }
    for (const LabeledCounter* c : r.labeledCounters) {
      for (const auto& [label, value] : c->values()) {
        out << c->name() << "{" << label << "} = " << value << "\n";
      }
      if (c->evictions() != 0) {
        out << c->name() << ".evicted = " << c->evictions() << "\n";
      }
    }
    for (const LabeledHistogram* lh : r.labeledHistograms) {
      lh->forEach([&](const std::string& label, const LatencyHistogram& h) {
        out << lh->name() << "{" << label << "}: count=" << h.count()
            << " p50~" << h.quantileNs(0.5) << "ns p95~" << h.quantileNs(0.95)
            << "ns p99~" << h.quantileNs(0.99) << "ns\n";
      });
      if (lh->evictions() != 0) {
        out << lh->name() << ".evicted = " << lh->evictions() << "\n";
      }
    }
  }
  const std::vector<PassRecord> passes = passRecords();
  if (!passes.empty()) {
    out << "passes (pipeline order):\n";
    for (const PassRecord& rec : passes) {
      out << "  " << rec.name << ": " << rec.invocations << " invocations, "
          << rec.changes << " changing, " << rec.ns / 1000 << " us, ir delta "
          << rec.irDelta << "\n";
    }
  }
  for (std::size_t i = 0; i < kNumErrorCodes; ++i) {
    const std::uint64_t n = shotFailureCount(static_cast<ErrorCode>(i));
    if (n != 0) {
      out << "shots.failure_counts." << errorCodeName(static_cast<ErrorCode>(i))
          << " = " << n << "\n";
    }
  }
  return out.str();
}

} // namespace qirkit::telemetry
