/// \file request_trace.hpp
/// Request-scoped trace context: an ordered list of named stages (with
/// wall-clock start/duration and an optional note) keyed by the
/// originating tenant and request id. One RequestTrace accompanies a
/// service job from admission to response delivery, threaded through
/// ShotOptions alongside the CancelToken, so the per-stage breakdown —
/// admission → queue wait → compile (hit/miss/coalesced) → execute —
/// can be returned in the response, archived in the flight recorder,
/// and emitted as request_id-tagged Chrome-trace spans.
///
/// Cost discipline (DESIGN 7f): stages are recorded unconditionally at
/// request cadence — a handful of clock reads and one short mutex
/// section per request, invisible next to socket I/O. The per-shot hot
/// path never touches a RequestTrace; executor stage marks fire only on
/// the batch-calling thread, and only when a trace was attached
/// (nullptr check otherwise). The one-relaxed-load-when-disabled
/// invariant continues to apply to every per-shot probe.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qirkit::telemetry {

/// One recorded stage of a request's lifetime.
struct RequestStage {
  std::string name;     ///< "admission", "queue", "compile", "execute", ...
  std::string note;     ///< optional qualifier: "hit", "miss", "terminal", ...
  std::uint64_t startNs = 0;
  std::uint64_t durNs = 0;
};

/// The span tree of one request (flat stage list — stages at this
/// granularity never overlap, so parent links add nothing). Thread-safe:
/// the connection thread records admission while the runner thread later
/// records execution stages.
class RequestTrace {
public:
  RequestTrace(std::string tenant, std::string requestId)
      : tenant_(std::move(tenant)), requestId_(std::move(requestId)) {}

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  void addStage(std::string_view name, std::uint64_t startNs,
                std::uint64_t durNs, std::string_view note = {});

  /// RAII stage scope: records [construction, destruction) under \p name.
  class StageScope {
  public:
    StageScope(RequestTrace* trace, std::string_view name);
    ~StageScope();
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;
    /// Attach/replace the stage's note before the scope closes.
    void setNote(std::string note) { note_ = std::move(note); }

  private:
    RequestTrace* trace_;
    std::string name_;
    std::string note_;
    std::uint64_t startNs_ = 0;
  };

  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }
  [[nodiscard]] const std::string& requestId() const noexcept { return requestId_; }

  /// Copy of the stages recorded so far, in recording order.
  [[nodiscard]] std::vector<RequestStage> stages() const;

  /// JSON array: [{"stage":"queue","start_ns":N,"dur_ns":N},...] with a
  /// "note" member on stages that have one. start_ns is relative to the
  /// first recorded stage, so the array is stable across daemon uptime.
  [[nodiscard]] std::string stagesJson() const;

  /// Emit one Chrome-trace span per stage, tagged with
  /// {"request_id":...,"tenant":...} args (plus the note when present).
  /// No-op (one relaxed load) while tracing is disarmed.
  void emitChromeSpans() const;

private:
  std::string tenant_;
  std::string requestId_;
  mutable std::mutex mutex_;
  std::vector<RequestStage> stages_;
};

} // namespace qirkit::telemetry
