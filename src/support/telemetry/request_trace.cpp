#include "support/telemetry/request_trace.hpp"

#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"

#include <sstream>

namespace qirkit::telemetry {

void RequestTrace::addStage(std::string_view name, std::uint64_t startNs,
                            std::uint64_t durNs, std::string_view note) {
  const std::lock_guard<std::mutex> lock(mutex_);
  RequestStage stage;
  stage.name = std::string(name);
  stage.note = std::string(note);
  stage.startNs = startNs;
  stage.durNs = durNs;
  stages_.push_back(std::move(stage));
}

RequestTrace::StageScope::StageScope(RequestTrace* trace, std::string_view name)
    : trace_(trace) {
  if (trace_ != nullptr) {
    name_ = std::string(name);
    startNs_ = nowNs();
  }
}

RequestTrace::StageScope::~StageScope() {
  if (trace_ != nullptr) {
    trace_->addStage(name_, startNs_, nowNs() - startNs_, note_);
  }
}

std::vector<RequestStage> RequestTrace::stages() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

std::string RequestTrace::stagesJson() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::uint64_t origin = 0;
  for (const RequestStage& stage : stages_) {
    if (origin == 0 || (stage.startNs != 0 && stage.startNs < origin)) {
      origin = stage.startNs;
    }
  }
  out << "[";
  bool first = true;
  for (const RequestStage& stage : stages_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"stage\":\"" << jsonEscape(stage.name)
        << "\",\"start_ns\":" << (stage.startNs >= origin ? stage.startNs - origin : 0)
        << ",\"dur_ns\":" << stage.durNs;
    if (!stage.note.empty()) {
      out << ",\"note\":\"" << jsonEscape(stage.note) << "\"";
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

void RequestTrace::emitChromeSpans() const {
  if (!trace::enabled()) {
    return; // the per-request probe cost while tracing is disarmed
  }
  std::vector<RequestStage> copy = stages();
  std::ostringstream args;
  args << "{\"request_id\":\"" << jsonEscape(requestId_) << "\",\"tenant\":\""
       << jsonEscape(tenant_) << "\"}";
  const std::string argsJson = args.str();
  for (const RequestStage& stage : copy) {
    std::string name = "request." + stage.name;
    if (!stage.note.empty()) {
      name += ":" + stage.note;
    }
    trace::emitSpan(name, stage.startNs, stage.durNs, argsJson);
  }
}

} // namespace qirkit::telemetry
