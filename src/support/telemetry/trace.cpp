#include "support/telemetry/trace.hpp"

#include "support/telemetry/telemetry.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

namespace qirkit::telemetry::trace {

namespace detail {

std::atomic<bool>& enabledFlag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

} // namespace detail

namespace {

struct Event {
  std::string name;
  std::string argsJson; // pre-rendered JSON object; empty = no args
  std::uint64_t startNs = 0;
  std::uint64_t durNs = 0;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mutex;
  std::string path;
  std::uint64_t anchorNs = 0; // ts origin, set when armed
  std::vector<Event> events;
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint32_t> nextTid{1};

  /// Bounds the buffer: a runaway span producer degrades to drop
  /// counting instead of unbounded memory growth.
  static constexpr std::size_t kMaxEvents = 1U << 20;

  static TraceState& instance() {
    static TraceState s;
    return s;
  }
};

std::uint32_t thisThreadId() noexcept {
  thread_local std::uint32_t id =
      TraceState::instance().nextTid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

} // namespace

namespace detail {

void endSpan(std::string&& name, std::uint64_t startNs) noexcept {
  // Sample the clock before taking the lock so contention does not
  // inflate the span.
  const std::uint64_t endNs = nowNs();
  TraceState& s = TraceState::instance();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!enabled()) {
    return; // flushed between construction and destruction
  }
  if (s.events.size() >= TraceState::kMaxEvents) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event ev;
  ev.name = std::move(name);
  ev.startNs = startNs;
  ev.durNs = endNs >= startNs ? endNs - startNs : 0;
  ev.tid = thisThreadId();
  s.events.push_back(std::move(ev));
}

} // namespace detail

void emitSpan(std::string_view name, std::uint64_t startNs, std::uint64_t durNs,
              std::string_view argsJson) {
  if (!enabled()) {
    return;
  }
  TraceState& s = TraceState::instance();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!enabled()) {
    return; // flushed between the probe and the lock
  }
  if (s.events.size() >= TraceState::kMaxEvents) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event ev;
  ev.name = std::string(name);
  ev.argsJson = std::string(argsJson);
  ev.startNs = startNs;
  ev.durNs = durNs;
  ev.tid = thisThreadId();
  s.events.push_back(std::move(ev));
}

std::uint64_t Span::nowNsOrZero() noexcept {
  const std::uint64_t ns = nowNs();
  return ns == 0 ? 1 : ns;
}

void begin(std::string path) {
  TraceState& s = TraceState::instance();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.path = std::move(path);
  s.anchorNs = nowNs();
  s.events.clear();
  s.dropped.store(0, std::memory_order_relaxed);
  detail::enabledFlag().store(true, std::memory_order_relaxed);
}

bool initFromEnv() {
  const char* path = std::getenv("QIRKIT_TRACE");
  if (path == nullptr || *path == '\0') {
    return false;
  }
  begin(path);
  return true;
}

bool flush() {
  TraceState& s = TraceState::instance();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!enabled()) {
    return true;
  }
  detail::enabledFlag().store(false, std::memory_order_relaxed);
  std::ofstream out(s.path, std::ios::binary);
  if (!out) {
    return false;
  }
  // Chrome trace-event format: complete ("X") events, ts/dur in
  // microseconds. Fractional microseconds keep nanosecond precision.
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const Event& ev : s.events) {
    if (!first) {
      out << ",";
    }
    first = false;
    const std::uint64_t rel = ev.startNs >= s.anchorNs ? ev.startNs - s.anchorNs : 0;
    const double ts = static_cast<double>(rel) / 1000.0;
    const double dur = static_cast<double>(ev.durNs) / 1000.0;
    out << "{\"name\":\"" << jsonEscape(ev.name)
        << "\",\"cat\":\"qirkit\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
        << ",\"ts\":" << ts << ",\"dur\":" << dur;
    if (!ev.argsJson.empty()) {
      out << ",\"args\":" << ev.argsJson;
    }
    out << "}";
  }
  out << "]}";
  s.events.clear();
  return static_cast<bool>(out);
}

std::uint64_t droppedEvents() noexcept {
  return TraceState::instance().dropped.load(std::memory_order_relaxed);
}

} // namespace qirkit::telemetry::trace
