/// \file cancel.hpp
/// Cooperative cancellation for long-running execution: a CancelToken
/// carries an optional absolute deadline (steady clock) and an explicit
/// cancel flag, and is probed from the shot loop, the VM dispatch loop,
/// and statevector kernel sweeps.
///
/// Probe-cost discipline (DESIGN 7a / 7e): an unarmed token costs exactly
/// one relaxed atomic load per probe — the same contract as disabled
/// telemetry probes and unarmed fault-injection sites. Only once armed
/// (a deadline set or cancel() called) does a probe pay the cancelled
/// check and a clock read, and the hot loops additionally stride their
/// probes so even an armed token is consulted every few thousand steps,
/// not every instruction.
///
/// Cancellation is cooperative and surfaces as Error(ErrorCode::Deadline)
/// via checkpoint(). Code running inside thread-pool workers must never
/// throw (pool tasks run unprotected), so kernel sweeps poll expired()
/// at chunk boundaries and re-check at the next safe throw point instead.
#pragma once

#include "support/error.hpp"

#include <atomic>
#include <cstdint>

namespace qirkit {

class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Monotonic now, in nanoseconds on the same clock deadlines use.
  [[nodiscard]] static std::uint64_t nowNs() noexcept;

  /// Request cancellation. Idempotent, safe from any thread (including
  /// signal-adjacent watchdog threads).
  void cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// Arm an absolute deadline (nanoseconds on the steady clock).
  void setDeadlineNs(std::uint64_t deadlineNs) noexcept {
    deadlineNs_.store(deadlineNs, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
  }

  /// Arm a deadline \p timeoutNs from now.
  void setTimeoutNs(std::uint64_t timeoutNs) noexcept {
    setDeadlineNs(nowNs() + timeoutNs);
  }

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Armed deadline in ns, or 0 when none was set.
  [[nodiscard]] std::uint64_t deadlineNs() const noexcept {
    return deadlineNs_.load(std::memory_order_relaxed);
  }

  /// True once the token is cancelled or its deadline has passed. The
  /// unarmed fast path is a single relaxed load.
  [[nodiscard]] bool expired() const noexcept {
    if (!armed_.load(std::memory_order_relaxed)) {
      return false;
    }
    return expiredSlow();
  }

  /// Throw Error(ErrorCode::Deadline) if expired; \p where names the
  /// probe site for the diagnostic ("vm dispatch", "statevector kernel").
  void checkpoint(const char* where) const;

private:
  [[nodiscard]] bool expiredSlow() const noexcept;

  std::atomic<bool> armed_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> deadlineNs_{0};
};

} // namespace qirkit
