#include "support/parallel.hpp"

#include <algorithm>
#include <optional>

namespace qirkit {

namespace {

/// configureGlobal() must observe whether global() has run, and global()
/// must observe the configured size, without static-init-order surprises:
/// both go through one mutex-guarded record.
struct GlobalPoolConfig {
  std::mutex mutex;
  std::size_t numThreads = 0; // 0 = hardware
  bool created = false;

  static GlobalPoolConfig& instance() {
    static GlobalPoolConfig c;
    return c;
  }
};

} // namespace

ThreadPool::ThreadPool(std::size_t numThreads) {
  if (numThreads == 0) {
    numThreads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(numThreads);
  for (std::size_t i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  taskAvailable_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::optional<std::function<void()>> task;
    {
      std::unique_lock lock(mutex_);
      taskAvailable_.wait(lock,
                          [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return; // stopping and drained
      }
      task.emplace(std::move(tasks_.front()));
      tasks_.pop();
    }
    (*task)();
    {
      const std::lock_guard lock(mutex_);
      --inFlight_;
      if (inFlight_ == 0) {
        allDone_.notify_all();
      }
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  taskAvailable_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

ThreadPool& ThreadPool::global() {
  GlobalPoolConfig& config = GlobalPoolConfig::instance();
  std::size_t numThreads = 0;
  {
    const std::lock_guard lock(config.mutex);
    config.created = true;
    numThreads = config.numThreads;
  }
  static ThreadPool pool(numThreads);
  return pool;
}

bool ThreadPool::configureGlobal(std::size_t numThreads) {
  GlobalPoolConfig& config = GlobalPoolConfig::instance();
  const std::lock_guard lock(config.mutex);
  if (config.created) {
    return false;
  }
  config.numThreads = numThreads;
  return true;
}

void TaskGroup::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    task();
    {
      const std::lock_guard lock(mutex_);
      --pending_;
      if (pending_ == 0) {
        done_.notify_all();
      }
    }
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void parallelForChunked(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        std::size_t grainSize) {
  if (n == 0) {
    return;
  }
  const std::size_t workers = pool.size();
  if (workers <= 1 || n <= grainSize) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(workers, (n + grainSize - 1) / grainSize);
  // Round the chunk size up to a whole number of grains so chunk seams
  // land on grain-aligned (hence cache-line-aligned, for power-of-two
  // grains) element boundaries: two workers never split a grain, so they
  // never write the two halves of one cache line.
  const std::size_t rawChunk = (n + chunks - 1) / chunks;
  const std::size_t chunkSize =
      ((rawChunk + grainSize - 1) / grainSize) * grainSize;
  TaskGroup group(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunkSize;
    if (begin >= n) {
      break; // alignment can leave trailing chunks empty
    }
    const std::size_t end = std::min(n, begin + chunkSize);
    group.submit([&body, begin, end] { body(begin, end); });
  }
  group.wait();
}

} // namespace qirkit
