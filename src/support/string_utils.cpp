#include "support/string_utils.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace qirkit {

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string_view> splitLines(std::string_view s) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find('\n', start);
    if (pos == std::string_view::npos) {
      if (start < s.size()) {
        lines.push_back(s.substr(start));
      }
      break;
    }
    std::string_view line = s.substr(start, pos - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    lines.push_back(line);
    start = pos + 1;
  }
  return lines;
}

std::optional<std::int64_t> parseInt(std::string_view s) noexcept {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parseDouble(std::string_view s) noexcept {
  if (s.empty()) {
    return std::nullopt;
  }
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return value;
}

bool isIdentStart(char c) noexcept {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '$' || c == '.' || c == '_';
}

bool isIdentChar(char c) noexcept {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '$' || c == '.' || c == '_' ||
         c == '-';
}

std::string formatDouble(double value) {
  if (std::isnan(value)) {
    return "nan";
  }
  if (std::isinf(value)) {
    return value > 0 ? "inf" : "-inf";
  }
  // Find the shortest precision that round-trips.
  for (int precision = 6; precision <= 17; ++precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) {
      std::string out(buf);
      // Ensure the token is recognizably a floating-point literal.
      if (out.find_first_of(".eE") == std::string::npos) {
        out += ".0";
      }
      return out;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string quoteString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\' || uc < 0x20 || uc > 0x7e) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\%02X", uc);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

} // namespace qirkit
