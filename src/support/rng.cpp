#include "support/rng.hpp"

// SplitMix64 is header-only; this translation unit anchors the library.
