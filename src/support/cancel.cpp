#include "support/cancel.hpp"

#include <chrono>
#include <string>

namespace qirkit {

std::uint64_t CancelToken::nowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool CancelToken::expiredSlow() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return true;
  }
  const std::uint64_t deadline = deadlineNs_.load(std::memory_order_relaxed);
  return deadline != 0 && nowNs() >= deadline;
}

void CancelToken::checkpoint(const char* where) const {
  if (!expired()) {
    return;
  }
  std::string message;
  if (cancelled_.load(std::memory_order_relaxed)) {
    message = "execution cancelled";
  } else {
    message = "deadline exceeded";
  }
  message += " (";
  message += where;
  message += ")";
  throw Error(ErrorCode::Deadline, message);
}

} // namespace qirkit
