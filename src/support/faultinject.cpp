#include "support/faultinject.hpp"

#include "support/rng.hpp"

#include <cstdlib>
#include <string>

namespace qirkit::fault {

const char* siteName(Site site) noexcept {
  switch (site) {
  case Site::VmDispatch: return "vm-dispatch";
  case Site::RuntimeCall: return "runtime-call";
  case Site::CompileCache: return "compile-cache";
  case Site::BytecodeCompile: return "bytecode-compile";
  }
  return "vm-dispatch";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const Plan& plan) {
  enabled_.store(false, std::memory_order_relaxed);
  plan_ = plan;
  for (auto& count : probes_) {
    count.store(0, std::memory_order_relaxed);
  }
  fired_.store(0, std::memory_order_relaxed);
  enabled_.store(plan.at != 0 || plan.every != 0, std::memory_order_release);
}

void FaultInjector::disable() {
  configure(Plan{}); // an all-zero plan never fires
}

std::uint64_t FaultInjector::probeCount(Site site) const noexcept {
  return probes_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

void FaultInjector::onProbe(Site site) {
  const std::uint64_t count =
      probes_[static_cast<std::size_t>(site)].fetch_add(1, std::memory_order_relaxed) + 1;
  if (site != plan_.site) {
    return;
  }
  bool fire = false;
  if (plan_.at != 0) {
    fire = count == plan_.at;
  } else if (plan_.every != 0) {
    // Seeded pseudo-random sampling: hash the probe index so the fire
    // pattern is irregular but identical run to run.
    SplitMix64 mix(plan_.seed ^ (count * 0x9e3779b97f4a7c15ULL));
    fire = mix() % plan_.every == 0;
  }
  if (fire) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    throw Error(ErrorCode::InjectedFault,
                std::string("injected fault at ") + siteName(site) + " (probe #" +
                    std::to_string(count) + ")",
                {}, plan_.transient);
  }
}

bool FaultInjector::configureFromEnv() {
  const char* spec = std::getenv("QIRKIT_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') {
    return false;
  }
  Plan plan;
  bool sawSite = false;
  std::string text(spec);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string field = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw Error(ErrorCode::Usage,
                  "QIRKIT_FAULT_INJECT: expected key=value, got '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "site") {
      sawSite = true;
      if (value == "vm-dispatch") {
        plan.site = Site::VmDispatch;
      } else if (value == "runtime-call") {
        plan.site = Site::RuntimeCall;
      } else if (value == "compile-cache") {
        plan.site = Site::CompileCache;
      } else if (value == "bytecode-compile") {
        plan.site = Site::BytecodeCompile;
      } else {
        throw Error(ErrorCode::Usage,
                    "QIRKIT_FAULT_INJECT: unknown site '" + value + "'");
      }
    } else if (key == "at" || key == "every" || key == "seed" || key == "transient") {
      std::uint64_t parsed = 0;
      try {
        parsed = std::stoull(value);
      } catch (const std::exception&) {
        throw Error(ErrorCode::Usage, "QIRKIT_FAULT_INJECT: bad number for '" +
                                          key + "': '" + value + "'");
      }
      if (key == "at") {
        plan.at = parsed;
      } else if (key == "every") {
        plan.every = parsed;
      } else if (key == "seed") {
        plan.seed = parsed;
      } else {
        plan.transient = parsed != 0;
      }
    } else {
      throw Error(ErrorCode::Usage,
                  "QIRKIT_FAULT_INJECT: unknown key '" + key + "'");
    }
  }
  if (!sawSite || (plan.at == 0 && plan.every == 0)) {
    throw Error(ErrorCode::Usage,
                "QIRKIT_FAULT_INJECT: needs site=<name> and at=<N> or every=<N>");
  }
  configure(plan);
  return true;
}

} // namespace qirkit::fault
