/// \file faultinject.hpp
/// Deterministic, seeded fault injection for exercising every recovery
/// path in the execution stack without needing a genuinely broken program.
///
/// The stack is instrumented with named probe *sites* (VM dispatch steps,
/// external runtime calls, compile-cache lookups, bytecode compiles). A
/// configured plan decides — purely from the per-site probe count and the
/// plan's seed, never from wall-clock or address randomness — whether a
/// given probe fires; a firing probe throws Error(ErrorCode::InjectedFault)
/// with the plan's transient/permanent flag, which then flows through the
/// same classification, retry, fallback, and reporting machinery as a real
/// fault. Two runs with the same plan and the same program fault at the
/// same points.
///
/// Disabled (the default) costs one relaxed atomic load per probe; the
/// VM's dispatch loop additionally caches the enabled flag per call frame
/// so the hot path stays branch-predictable.
///
/// The CLI arms the injector from the environment:
///   QIRKIT_FAULT_INJECT="site=vm-dispatch,at=100"          exactly probe #100
///   QIRKIT_FAULT_INJECT="site=runtime-call,every=50,seed=7" ~1/50 probes, seeded
///   ... plus optional ",transient=0|1" (default 1).
#pragma once

#include "support/error.hpp"

#include <array>
#include <atomic>
#include <cstdint>

namespace qirkit::fault {

/// Instrumented points in the execution stack.
enum class Site : std::uint8_t {
  VmDispatch,      ///< per step-counted instruction in the VM's dispatch loop
  RuntimeCall,     ///< per external (__quantum__*) dispatch, either engine
  CompileCache,    ///< per CompileCache::getOrCompile lookup
  BytecodeCompile, ///< per IR -> bytecode compilation
};
inline constexpr std::size_t kNumSites = 4;

[[nodiscard]] const char* siteName(Site site) noexcept;

/// When and how to fire. `at` and `every` are mutually exclusive; whichever
/// is nonzero is the mode (`at` wins when both are set).
struct Plan {
  Site site = Site::VmDispatch;
  std::uint64_t at = 0;    ///< fire exactly on the at-th probe (1-based)
  std::uint64_t every = 0; ///< fire pseudo-randomly ~1/every probes (seeded)
  std::uint64_t seed = 1;  ///< mixes into which probes fire in `every` mode
  bool transient = true;   ///< injected errors report as retryable
};

class FaultInjector {
public:
  /// The process-wide injector every probe site consults.
  static FaultInjector& instance();

  /// Arm \p plan; resets all probe/fire counters so plans compose
  /// deterministically across test cases.
  void configure(const Plan& plan);

  /// Arm from QIRKIT_FAULT_INJECT (see file comment). Returns true when a
  /// plan was parsed and armed; malformed values throw Error(Usage).
  bool configureFromEnv();

  /// Disarm and reset counters.
  void disable();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Count a probe of \p site and throw the injected fault if the plan
  /// says this is the one. No-op (beyond counting) for other sites.
  void onProbe(Site site);

  [[nodiscard]] std::uint64_t probeCount(Site site) const noexcept;
  [[nodiscard]] std::uint64_t firedCount() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> enabled_{false};
  Plan plan_;
  std::array<std::atomic<std::uint64_t>, kNumSites> probes_{};
  std::atomic<std::uint64_t> fired_{0};
};

/// The probe call instrumented code makes; a single relaxed load when no
/// plan is armed.
inline void probe(Site site) {
  FaultInjector& injector = FaultInjector::instance();
  if (injector.enabled()) {
    injector.onProbe(site);
  }
}

/// RAII disarm for tests: guarantees a configured plan cannot leak into
/// the next test case.
struct ScopedPlan {
  explicit ScopedPlan(const Plan& plan) { FaultInjector::instance().configure(plan); }
  ~ScopedPlan() { FaultInjector::instance().disable(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

} // namespace qirkit::fault
