/// \file error.hpp
/// The structured error taxonomy shared by every layer of the stack:
/// frontends (parse), the verifier (verify), both execution engines
/// (trap-*), the bytecode compiler (compile-fail), and the shot executor
/// (resource limits, injected faults).
///
/// Every qirkit exception derives from Error and therefore carries a
/// machine-readable ErrorCode, a severity, a source location (when one is
/// known), and a transient/permanent flag. Callers that need to make a
/// recovery decision — retry the shot, fall back to the reference engine,
/// count the failure and move on — switch on code() and transient()
/// instead of string-matching what(). ParseError, SemanticError, and the
/// engines' TrapError are thin wrappers that pick the right code, so
/// pre-taxonomy catch sites keep compiling unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qirkit {

/// A position in a source buffer. Lines and columns are 1-based; a value
/// of 0 means "unknown".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t col = 0;

  [[nodiscard]] bool isValid() const noexcept { return line != 0; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Severity of a diagnostic message.
enum class Severity { Note, Warning, Error };

/// A single diagnostic: severity, location, and message. Frontends collect
/// these; fatal conditions are additionally thrown as ParseError.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// What went wrong, as a machine-readable class. The CLI maps these to its
/// exit-code contract and prints them as error[<name>]; the shot executor
/// keys its per-shot failure histogram on them.
enum class ErrorCode : std::uint8_t {
  Parse,              ///< malformed textual input (QIR, QASM, patterns)
  Verify,             ///< IR verifier rejected the module
  Semantic,           ///< semantic invariant violated (profiles, targets)
  Io,                 ///< file cannot be read or written
  Usage,              ///< bad command-line invocation
  Trap,               ///< generic dynamic violation
  TrapOutOfBounds,    ///< memory access outside the arena
  TrapUnboundExternal,///< call to an external with no runtime binding
  TrapArithmetic,     ///< division by zero / oversized shift
  TrapInvalidQubit,   ///< released, unknown, or out-of-register qubit
  TrapUnreachable,    ///< executed an 'unreachable' terminator
  StepBudgetExceeded, ///< runaway program hit the step limit
  ResourceLimit,      ///< stack depth / qubit budget / arena exhausted
  CompileFail,        ///< module cannot be lowered to bytecode
  InjectedFault,      ///< deterministic fault-injection hook fired
  Deadline,           ///< deadline exceeded or request cancelled
  Internal,           ///< invariant broken inside qirkit itself
};

/// Stable kebab-case name ("trap-out-of-bounds") used in CLI output and
/// the fault-injection env knob.
[[nodiscard]] const char* errorCodeName(ErrorCode code) noexcept;

/// Base class of every qirkit exception: a std::runtime_error whose what()
/// is the (possibly decorated) human-readable message, plus the structured
/// fields recovery logic keys on.
class Error : public std::runtime_error {
public:
  explicit Error(ErrorCode code, const std::string& message, SourceLoc loc = {},
                 bool transient = false, Severity severity = Severity::Error)
      : std::runtime_error(message), message_(message), code_(code), loc_(loc),
        transient_(transient), severity_(severity) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }
  /// Transient failures are worth retrying (with a fresh derived seed);
  /// permanent ones will fail the same way every time.
  [[nodiscard]] bool transient() const noexcept { return transient_; }
  [[nodiscard]] Severity severity() const noexcept { return severity_; }
  /// The undecorated message (what() may prefix a location).
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// The CLI diagnostic form: "error[<code>]: <message> at <loc>" (the
  /// location clause is omitted when unknown).
  [[nodiscard]] std::string formatted() const;

protected:
  /// For wrappers that decorate what() differently from message() —
  /// ParseError keeps its historical "line:col: message" what().
  Error(ErrorCode code, const std::string& whatText, const std::string& message,
        SourceLoc loc, bool transient)
      : std::runtime_error(whatText), message_(message), code_(code), loc_(loc),
        transient_(transient) {}

private:
  std::string message_;
  ErrorCode code_ = ErrorCode::Internal;
  SourceLoc loc_;
  bool transient_ = false;
  Severity severity_ = Severity::Error;
};

/// Exception thrown by parsers on unrecoverable input errors. Carries the
/// location of the offending token so callers can report it.
class ParseError : public Error {
public:
  ParseError(SourceLoc loc, const std::string& message)
      : Error(ErrorCode::Parse, format(loc, message), message, loc,
              /*transient=*/false) {}

private:
  static std::string format(SourceLoc loc, const std::string& message);
};

/// Exception thrown when a semantic invariant is violated (verifier
/// failures, profile violations, infeasible programs). The verifier passes
/// ErrorCode::Verify; everything else defaults to Semantic.
class SemanticError : public Error {
public:
  explicit SemanticError(const std::string& message,
                         ErrorCode code = ErrorCode::Semantic)
      : Error(code, message) {}
};

/// The structured fields of an in-flight exception, extracted for recovery
/// decisions without rethrowing.
struct ClassifiedError {
  ErrorCode code = ErrorCode::Internal;
  bool transient = false;
  SourceLoc loc;
  std::string message;
};

/// Classify any exception: Error subclasses keep their code; foreign
/// exceptions (std::bad_alloc, std::invalid_argument, ...) are Internal.
[[nodiscard]] ClassifiedError classifyException(const std::exception& e);

} // namespace qirkit
