/// \file source_location.hpp
/// Source locations and diagnostics shared by all textual frontends
/// (the LLVM-IR parser, the OpenQASM parser, and the base-profile
/// pattern parser).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qirkit {

/// A position in a source buffer. Lines and columns are 1-based; a value
/// of 0 means "unknown".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t col = 0;

  [[nodiscard]] bool isValid() const noexcept { return line != 0; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Severity of a diagnostic message.
enum class Severity { Note, Warning, Error };

/// A single diagnostic: severity, location, and message. Frontends collect
/// these; fatal conditions are additionally thrown as ParseError.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Exception thrown by parsers on unrecoverable input errors. Carries the
/// location of the offending token so callers can report it.
class ParseError : public std::runtime_error {
public:
  ParseError(SourceLoc loc, const std::string& message)
      : std::runtime_error(format(loc, message)), loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

private:
  static std::string format(SourceLoc loc, const std::string& message);
  SourceLoc loc_;
};

/// Exception thrown when a semantic invariant is violated (verifier
/// failures, profile violations, infeasible programs).
class SemanticError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

} // namespace qirkit
