/// \file source_location.hpp
/// Source locations and diagnostics shared by all textual frontends.
/// The definitions (SourceLoc, Severity, Diagnostic, ParseError,
/// SemanticError) live in error.hpp alongside the error taxonomy they
/// participate in; this header remains as the historical include point.
#pragma once

#include "support/error.hpp"
