/// \file string_utils.hpp
/// Small string helpers used by the textual frontends and printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qirkit {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split \p s on \p sep; empty fields are kept.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Split \p s into lines, accepting both "\n" and "\r\n" endings.
[[nodiscard]] std::vector<std::string_view> splitLines(std::string_view s);

/// Parse a signed 64-bit integer; returns nullopt on malformed input or
/// overflow. Accepts an optional leading '-'.
[[nodiscard]] std::optional<std::int64_t> parseInt(std::string_view s) noexcept;

/// Parse a double; returns nullopt on malformed input.
[[nodiscard]] std::optional<double> parseDouble(std::string_view s) noexcept;

/// True if \p c may start an LLVM identifier ([A-Za-z$._]).
[[nodiscard]] bool isIdentStart(char c) noexcept;

/// True if \p c may continue an LLVM identifier ([A-Za-z0-9$._-]).
[[nodiscard]] bool isIdentChar(char c) noexcept;

/// Format a double the way LLVM's textual IR does for human-friendly
/// values: shortest representation that round-trips.
[[nodiscard]] std::string formatDouble(double value);

/// Quote a string using LLVM's escaping rules ("\\xx" hex escapes for
/// non-printable bytes, '"' and '\\').
[[nodiscard]] std::string quoteString(std::string_view s);

} // namespace qirkit
