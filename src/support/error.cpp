#include "support/error.hpp"

namespace qirkit {

std::string SourceLoc::str() const {
  if (!isValid()) {
    return "<unknown>";
  }
  return std::to_string(line) + ":" + std::to_string(col);
}

std::string Diagnostic::str() const {
  const char* sev = severity == Severity::Error     ? "error"
                    : severity == Severity::Warning ? "warning"
                                                    : "note";
  return loc.str() + ": " + sev + ": " + message;
}

const char* errorCodeName(ErrorCode code) noexcept {
  switch (code) {
  case ErrorCode::Parse: return "parse";
  case ErrorCode::Verify: return "verify";
  case ErrorCode::Semantic: return "semantic";
  case ErrorCode::Io: return "io";
  case ErrorCode::Usage: return "usage";
  case ErrorCode::Trap: return "trap";
  case ErrorCode::TrapOutOfBounds: return "trap-out-of-bounds";
  case ErrorCode::TrapUnboundExternal: return "trap-unbound-external";
  case ErrorCode::TrapArithmetic: return "trap-arithmetic";
  case ErrorCode::TrapInvalidQubit: return "trap-invalid-qubit";
  case ErrorCode::TrapUnreachable: return "trap-unreachable";
  case ErrorCode::StepBudgetExceeded: return "step-budget-exceeded";
  case ErrorCode::ResourceLimit: return "resource-limit";
  case ErrorCode::CompileFail: return "compile-fail";
  case ErrorCode::InjectedFault: return "injected-fault";
  case ErrorCode::Deadline: return "deadline";
  case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

std::string Error::formatted() const {
  std::string out = "error[";
  out += errorCodeName(code_);
  out += "]: ";
  out += message_;
  if (loc_.isValid()) {
    out += " at " + loc_.str();
  }
  return out;
}

std::string ParseError::format(SourceLoc loc, const std::string& message) {
  return loc.str() + ": " + message;
}

ClassifiedError classifyException(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) {
    return {err->code(), err->transient(), err->loc(), err->message()};
  }
  return {ErrorCode::Internal, false, {}, e.what()};
}

} // namespace qirkit
