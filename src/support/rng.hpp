/// \file rng.hpp
/// Deterministic random number generation. Every stochastic component in
/// qirkit (measurement sampling, workload generators) takes an explicit
/// seed so that tests and benchmarks are reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace qirkit {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Used directly and to
/// seed larger state. Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). \p bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method without the rejection step;
    // bias is < 2^-32 for the bounds used here (circuit sizes).
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

private:
  std::uint64_t state_;
};

} // namespace qirkit
