#include "support/source_location.hpp"

namespace qirkit {

std::string SourceLoc::str() const {
  if (!isValid()) {
    return "<unknown>";
  }
  return std::to_string(line) + ":" + std::to_string(col);
}

std::string Diagnostic::str() const {
  const char* sev = severity == Severity::Error     ? "error"
                    : severity == Severity::Warning ? "warning"
                                                    : "note";
  return loc.str() + ": " + sev + ": " + message;
}

std::string ParseError::format(SourceLoc loc, const std::string& message) {
  return loc.str() + ": " + message;
}

} // namespace qirkit
