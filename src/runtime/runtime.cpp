#include "runtime/runtime.hpp"

#include "qir/names.hpp"

#include <array>
#include <functional>

namespace qirkit::runtime {

using interp::ExternContext;
using interp::Memory;
using interp::RtValue;
using interp::TrapError;

namespace {

/// True if \p address lies in the interpreter memory arena (an array
/// element pointer rather than a handle or static id).
bool isArenaAddress(std::uint64_t address) noexcept {
  return address >= Memory::kBase &&
         address < QuantumRuntime::kDynamicHandleBase;
}

double argDouble(std::span<const RtValue> args, std::size_t i) { return args[i].d; }
std::uint64_t argPtr(std::span<const RtValue> args, std::size_t i) {
  return args[i].p;
}
std::int64_t argInt(std::span<const RtValue> args, std::size_t i) {
  return args[i].i;
}

} // namespace

// ---------------------------------------------------------------------------
// QuantumRuntime
// ---------------------------------------------------------------------------

void QuantumRuntime::reset(std::uint64_t seed) {
  state_ = sim::StateVector(0, pool_, precision_);
  state_.setCancelToken(cancel_); // token installation survives reset
  rng_ = SplitMix64(seed);
  stats_ = {};
  qubitByHandle_.clear();
  nextDynamicHandle_ = kDynamicHandleBase;
  results_.clear();
  arraySizes_.clear();
  output_.clear();
  resultQubit_.clear();
  deferredOutput_.clear();
}

void QuantumRuntime::reserveStaticQubits(unsigned n) {
  for (unsigned id = 0; id < n; ++id) {
    const auto [it, inserted] = qubitByHandle_.try_emplace(id, 0U);
    if (inserted) {
      it->second = state_.addQubit();
    }
  }
}

unsigned QuantumRuntime::preallocateFromAttributes(const ir::Module& module) {
  const ir::Function* entry = module.entryPoint();
  if (entry == nullptr) {
    return 0;
  }
  const std::string attr = entry->getAttribute("required_num_qubits");
  if (attr.empty()) {
    return 0;
  }
  const auto n = std::strtoul(attr.c_str(), nullptr, 10);
  reserveStaticQubits(static_cast<unsigned>(n));
  return static_cast<unsigned>(n);
}

std::uint64_t QuantumRuntime::allocateQubitHandle() {
  const std::uint64_t handle = nextDynamicHandle_++;
  qubitByHandle_[handle] = state_.addQubit();
  ++stats_.dynamicQubitsAllocated;
  return handle;
}

unsigned QuantumRuntime::resolveQubit(std::uint64_t address, ExternContext& ctx,
                                      bool canDeref) {
  if (address >= kDynamicHandleBase) {
    const auto it = qubitByHandle_.find(address);
    if (it == qubitByHandle_.end()) {
      throw TrapError("use of released or invalid qubit handle",
                      ErrorCode::TrapInvalidQubit);
    }
    return it->second;
  }
  if (isArenaAddress(address)) {
    if (!canDeref) {
      throw TrapError("qubit argument is a memory address, not a handle",
                      ErrorCode::TrapInvalidQubit);
    }
    // Ex. 2 style: the array element pointer is passed directly; the
    // element stores the handle.
    std::uint64_t handle = 0;
    ctx.memory.load(address, &handle, sizeof handle);
    return resolveQubit(handle, ctx, /*canDeref=*/false);
  }
  return resolveStaticQubit(address);
}

unsigned QuantumRuntime::resolveStaticQubit(std::uint64_t address) {
  // Static qubit address (Ex. 6): allocate on the fly at first use (§IV.A).
  const auto [it, inserted] = qubitByHandle_.try_emplace(address, 0U);
  if (inserted) {
    it->second = state_.addQubit();
    ++stats_.staticQubitsAllocated;
  }
  return it->second;
}

void QuantumRuntime::applyFusedBlock(const interp::FusedBlock& block) {
  unsigned qubits[interp::FusedBlock::kMaxQubits] = {};
  for (std::size_t i = 0; i < block.qubits.size(); ++i) {
    qubits[i] = resolveStaticQubit(block.qubits[i]);
  }
  switch (block.kind) {
  case interp::FusedBlock::Kind::Unitary1:
    state_.apply1(sim::GateMatrix2{block.matrix[0], block.matrix[1],
                                   block.matrix[2], block.matrix[3]},
                  qubits[0]);
    break;
  case interp::FusedBlock::Kind::Unitary2: {
    sim::GateMatrix4 gate;
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        gate.m[r][c] = block.matrix[static_cast<std::size_t>(r * 4 + c)];
      }
    }
    state_.apply2(gate, qubits[0], qubits[1]);
    break;
  }
  case interp::FusedBlock::Kind::Diagonal:
    state_.applyDiagonal(
        block.matrix,
        std::span<const unsigned>(qubits, block.qubits.size()));
    break;
  }
  // Stats stay per source gate, so fused and unfused runs report the same
  // gatesApplied.
  stats_.gatesApplied += block.sourceGates;
}

void QuantumRuntime::applyFusedSweep(std::span<const interp::FusedBlock> blocks) {
  // Pre-sized so the diagQubits spans handed to the simulator stay valid
  // for the whole sweep. Qubits resolve per block in run order: first-seen
  // on-the-fly allocation then matches the per-block path exactly.
  std::vector<std::array<unsigned, interp::FusedBlock::kMaxQubits>> qubitStore(
      blocks.size());
  std::vector<sim::SweepGate> gates;
  gates.reserve(blocks.size());
  std::uint64_t sourceGates = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const interp::FusedBlock& block = blocks[b];
    std::array<unsigned, interp::FusedBlock::kMaxQubits>& qubits = qubitStore[b];
    for (std::size_t i = 0; i < block.qubits.size(); ++i) {
      qubits[i] = resolveStaticQubit(block.qubits[i]);
    }
    sim::SweepGate gate;
    switch (block.kind) {
    case interp::FusedBlock::Kind::Unitary1:
      gate.kind = sim::SweepGate::Kind::Unitary1;
      gate.q0 = qubits[0];
      gate.m2 = sim::GateMatrix2{block.matrix[0], block.matrix[1],
                                 block.matrix[2], block.matrix[3]};
      break;
    case interp::FusedBlock::Kind::Unitary2:
      gate.kind = sim::SweepGate::Kind::Unitary2;
      gate.q0 = qubits[0];
      gate.q1 = qubits[1];
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          gate.m4.m[r][c] = block.matrix[static_cast<std::size_t>(r * 4 + c)];
        }
      }
      break;
    case interp::FusedBlock::Kind::Diagonal:
      gate.kind = sim::SweepGate::Kind::Diagonal;
      gate.diag = block.matrix;
      gate.diagQubits =
          std::span<const unsigned>(qubits.data(), block.qubits.size());
      break;
    }
    gates.push_back(gate);
    sourceGates += block.sourceGates;
  }
  state_.applyFusedSweep(gates);
  stats_.gatesApplied += sourceGates;
}

bool QuantumRuntime::resultValue(std::uint64_t key) const {
  const auto it = results_.find(key);
  return it != results_.end() && it->second;
}

std::string QuantumRuntime::outputBitString() const {
  std::string out;
  out.reserve(output_.size());
  for (const auto& [label, value] : output_) {
    out.push_back(value ? '1' : '0');
  }
  return out;
}

std::map<std::string, std::uint64_t> QuantumRuntime::sampleRecordedHistogram(
    std::uint64_t shots, SplitMix64& rng) const {
  std::map<std::string, std::uint64_t> histogram;
  // Joint Z-measurements commute, so the whole record is one draw from the
  // final state; each distinct basis state expands to its bit string once.
  for (const auto& [basis, count] : state_.sampleShots(shots, rng)) {
    std::string bits;
    bits.reserve(deferredOutput_.size());
    for (const auto& [label, key] : deferredOutput_) {
      const auto it = resultQubit_.find(key);
      const bool value =
          it != resultQubit_.end() && ((basis >> it->second) & 1) != 0;
      bits.push_back(value ? '1' : '0');
    }
    histogram[bits] += count;
  }
  return histogram;
}

void QuantumRuntime::bind(interp::ExternalRegistry& interp) {
  // Engines that execute fused blocks (the bytecode VM) get the direct
  // kernel path; the interpreter's default bindFusedHost is a no-op.
  interp.bindFusedHost(this);
  using Handler = interp::ExternalRegistry::ExternalHandler;
  const auto gate1 = [this](void (*apply)(sim::StateVector&, unsigned)) -> Handler {
    return [this, apply](std::span<const RtValue> args, ExternContext& ctx) {
      apply(state_, resolveQubit(argPtr(args, 0), ctx));
      ++stats_.gatesApplied;
      return RtValue::makeVoid();
    };
  };
  const auto rot = [this](void (*apply)(sim::StateVector&, double, unsigned)) -> Handler {
    return [this, apply](std::span<const RtValue> args, ExternContext& ctx) {
      apply(state_, argDouble(args, 0), resolveQubit(argPtr(args, 1), ctx));
      ++stats_.gatesApplied;
      return RtValue::makeVoid();
    };
  };

  interp.bindExternal(std::string(qir::kQisH), gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateH(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisX), gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateX(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisY), gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateY(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisZ), gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateZ(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisS), gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateS(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisSAdj),
                      gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateSdg(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisT), gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateT(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisTAdj),
                      gate1([](sim::StateVector& s, unsigned q) {
                        s.apply1(sim::gateTdg(), q);
                      }));
  interp.bindExternal(std::string(qir::kQisReset),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const unsigned q = resolveQubit(argPtr(args, 0), ctx);
                        if (mode_ == MeasurementMode::Defer) {
                          // Shot analysis only admits resets of fresh
                          // qubits (a no-op); verify so an unsound caller
                          // trips the resim fallback instead of sampling
                          // from a silently wrong state.
                          if (state_.probabilityOfOne(q) > 1e-9) {
                            throw TrapError(
                                "reset of a non-|0> qubit in "
                                "deferred-measurement mode",
                                ErrorCode::Semantic);
                          }
                        } else {
                          state_.resetQubit(q, rng_);
                        }
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisRX),
                      rot([](sim::StateVector& s, double a, unsigned q) {
                        s.apply1(sim::gateRX(a), q);
                      }));
  interp.bindExternal(std::string(qir::kQisRY),
                      rot([](sim::StateVector& s, double a, unsigned q) {
                        s.apply1(sim::gateRY(a), q);
                      }));
  interp.bindExternal(std::string(qir::kQisRZ),
                      rot([](sim::StateVector& s, double a, unsigned q) {
                        s.apply1(sim::gateRZ(a), q);
                      }));
  interp.bindExternal(std::string(qir::kQisCNOT),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        state_.applyControlled1(sim::gateX(),
                                                resolveQubit(argPtr(args, 0), ctx),
                                                resolveQubit(argPtr(args, 1), ctx));
                        ++stats_.gatesApplied;
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisCZ),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        state_.applyControlled1(sim::gateZ(),
                                                resolveQubit(argPtr(args, 0), ctx),
                                                resolveQubit(argPtr(args, 1), ctx));
                        ++stats_.gatesApplied;
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisSwap),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        state_.applySwap(resolveQubit(argPtr(args, 0), ctx),
                                         resolveQubit(argPtr(args, 1), ctx));
                        ++stats_.gatesApplied;
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisCCX),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        state_.applyCCX(resolveQubit(argPtr(args, 0), ctx),
                                        resolveQubit(argPtr(args, 1), ctx),
                                        resolveQubit(argPtr(args, 2), ctx));
                        ++stats_.gatesApplied;
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisMz),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const unsigned q = resolveQubit(argPtr(args, 0), ctx);
                        if (mode_ == MeasurementMode::Defer) {
                          // Record which qubit backs the result key; the
                          // outcome is drawn jointly at sampling time.
                          resultQubit_[resultKey(argPtr(args, 1))] = q;
                        } else {
                          const bool outcome = state_.measure(q, rng_);
                          results_[resultKey(argPtr(args, 1))] = outcome;
                        }
                        ++stats_.measurements;
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisReadResult),
                      [this](std::span<const RtValue> args, ExternContext&) {
                        return RtValue::makeInt(
                            resultValue(resultKey(argPtr(args, 0))) ? 1 : 0);
                      });

  // -- runtime management -----------------------------------------------------
  interp.bindExternal(std::string(qir::kRtInitialize),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtQubitAllocate),
                      [this](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makePtr(allocateQubitHandle());
                      });
  interp.bindExternal(std::string(qir::kRtQubitRelease),
                      [this](std::span<const RtValue> args, ExternContext&) {
                        // Release collapses the qubit; indices of other
                        // handles would shift, so we keep the simulator
                        // register and only invalidate the handle.
                        qubitByHandle_.erase(argPtr(args, 0));
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(
      std::string(qir::kRtQubitAllocateArray),
      [this](std::span<const RtValue> args, ExternContext& ctx) {
        const auto count = static_cast<std::uint64_t>(argInt(args, 0));
        const std::uint64_t base = ctx.memory.allocate(std::max<std::uint64_t>(
            8, count * 8));
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t handle = allocateQubitHandle();
          ctx.memory.store(base + 8 * i, &handle, sizeof handle);
        }
        ++stats_.arraysCreated;
        arraySizes_[base] = count;
        return RtValue::makePtr(base);
      });
  interp.bindExternal(std::string(qir::kRtQubitReleaseArray),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtArrayCreate1d),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const auto elemSize =
                            static_cast<std::uint64_t>(argInt(args, 0));
                        const auto count = static_cast<std::uint64_t>(argInt(args, 1));
                        // Result arrays hold 8-byte slots regardless of the
                        // declared element size, so element pointers can be
                        // used directly as Result* keys.
                        const std::uint64_t size =
                            std::max<std::uint64_t>(elemSize, 8) * std::max<std::uint64_t>(count, 1);
                        const std::uint64_t base = ctx.memory.allocate(size);
                        ++stats_.arraysCreated;
                        arraySizes_[base] = count;
                        return RtValue::makePtr(base);
                      });
  interp.bindExternal(std::string(qir::kRtArrayGetElementPtr1d),
                      [](std::span<const RtValue> args, ExternContext&) {
                        return RtValue::makePtr(argPtr(args, 0) +
                                                8 * static_cast<std::uint64_t>(
                                                        argInt(args, 1)));
                      });
  interp.bindExternal(std::string(qir::kRtArrayGetSize1d),
                      [this](std::span<const RtValue> args, ExternContext&) {
                        const auto it = arraySizes_.find(argPtr(args, 0));
                        if (it == arraySizes_.end()) {
                          throw TrapError("array_get_size_1d on unknown array",
                                          ErrorCode::TrapInvalidQubit);
                        }
                        return RtValue::makeInt(static_cast<std::int64_t>(it->second));
                      });
  interp.bindExternal(std::string(qir::kRtArrayUpdateRefCount),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtResultRecordOutput),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const std::uint64_t labelPtr = argPtr(args, 1);
                        const std::string label =
                            labelPtr == 0 ? std::string{}
                                          : ctx.readCString(labelPtr);
                        if (mode_ == MeasurementMode::Defer) {
                          deferredOutput_.emplace_back(
                              label, resultKey(argPtr(args, 0)));
                        } else {
                          output_.emplace_back(
                              label, resultValue(resultKey(argPtr(args, 0))));
                        }
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtArrayRecordOutput),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtResultGetOne),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makePtr(~std::uint64_t{0});
                      });
  interp.bindExternal(std::string(qir::kRtResultGetZero),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makePtr(~std::uint64_t{0} - 1);
                      });
  interp.bindExternal(std::string(qir::kRtResultEqual),
                      [this](std::span<const RtValue> args, ExternContext&) {
                        const auto one = ~std::uint64_t{0};
                        const auto zero = one - 1;
                        const auto valueOf = [&](std::uint64_t r) {
                          if (r == one) {
                            return true;
                          }
                          if (r == zero) {
                            return false;
                          }
                          return resultValue(resultKey(r));
                        };
                        return RtValue::makeInt(
                            valueOf(argPtr(args, 0)) == valueOf(argPtr(args, 1)) ? 1
                                                                                 : 0);
                      });
}

// ---------------------------------------------------------------------------
// RecordingRuntime
// ---------------------------------------------------------------------------

std::uint64_t RecordingRuntime::allocateQubitHandle() {
  const std::uint64_t handle = nextDynamicHandle_++;
  const unsigned index = circuit_.numQubits();
  circuit_.setNumQubits(index + 1);
  qubitByHandle_[handle] = index;
  return handle;
}

unsigned RecordingRuntime::resolveQubit(std::uint64_t address, ExternContext& ctx,
                                        bool canDeref) {
  if (address >= QuantumRuntime::kDynamicHandleBase) {
    const auto it = qubitByHandle_.find(address);
    if (it == qubitByHandle_.end()) {
      throw TrapError("use of invalid qubit handle",
                      ErrorCode::TrapInvalidQubit);
    }
    return it->second;
  }
  if (isArenaAddress(address)) {
    if (!canDeref) {
      throw TrapError("qubit argument is a memory address, not a handle",
                      ErrorCode::TrapInvalidQubit);
    }
    std::uint64_t handle = 0;
    ctx.memory.load(address, &handle, sizeof handle);
    return resolveQubit(handle, ctx, false);
  }
  const auto [it, inserted] = qubitByHandle_.try_emplace(address, 0U);
  if (inserted) {
    const unsigned index = circuit_.numQubits();
    circuit_.setNumQubits(index + 1);
    it->second = index;
  }
  return it->second;
}

void RecordingRuntime::bind(interp::ExternalRegistry& interp) {
  // No fused kernels here: clear any previously-bound host so the VM
  // replays fused blocks call by call and every gate is recorded.
  interp.bindFusedHost(nullptr);
  using circuit::OpKind;
  using circuit::Operation;
  // Gate recorder shared by all qis handlers.
  const auto record = [this](OpKind kind) {
    return [this, kind](std::span<const RtValue> args, ExternContext& ctx) {
      Operation op;
      op.kind = kind;
      const unsigned params = circuit::opKindParams(kind);
      for (unsigned p = 0; p < params; ++p) {
        op.params.push_back(args[p].d);
      }
      for (std::size_t q = params; q < args.size(); ++q) {
        op.qubits.push_back(resolveQubit(args[q].p, ctx));
      }
      circuit_.add(std::move(op));
      return RtValue::makeVoid();
    };
  };
  const std::pair<std::string_view, OpKind> gates[] = {
      {qir::kQisH, OpKind::H},       {qir::kQisX, OpKind::X},
      {qir::kQisY, OpKind::Y},       {qir::kQisZ, OpKind::Z},
      {qir::kQisS, OpKind::S},       {qir::kQisSAdj, OpKind::Sdg},
      {qir::kQisT, OpKind::T},       {qir::kQisTAdj, OpKind::Tdg},
      {qir::kQisRX, OpKind::RX},     {qir::kQisRY, OpKind::RY},
      {qir::kQisRZ, OpKind::RZ},     {qir::kQisCNOT, OpKind::CX},
      {qir::kQisCZ, OpKind::CZ},     {qir::kQisSwap, OpKind::Swap},
      {qir::kQisCCX, OpKind::CCX},   {qir::kQisReset, OpKind::Reset}};
  for (const auto& [name, kind] : gates) {
    interp.bindExternal(std::string(name), record(kind));
  }
  interp.bindExternal(std::string(qir::kQisMz),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const unsigned q = resolveQubit(args[0].p, ctx);
                        const std::uint64_t key = args[1].p;
                        auto [it, inserted] =
                            bitByResult_.try_emplace(key, circuit_.numBits());
                        if (inserted) {
                          circuit_.setNumBits(circuit_.numBits() + 1);
                        }
                        circuit_.add(
                            {OpKind::Measure, {q}, {}, it->second, std::nullopt});
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisReadResult),
                      [](std::span<const RtValue>, ExternContext&) {
                        // Trace-based import fixes all measurement feedback
                        // to 0 — the documented limitation of this route.
                        return RtValue::makeInt(0);
                      });
  interp.bindExternal(std::string(qir::kRtInitialize),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtQubitAllocate),
                      [this](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makePtr(allocateQubitHandle());
                      });
  interp.bindExternal(std::string(qir::kRtQubitRelease),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(
      std::string(qir::kRtQubitAllocateArray),
      [this](std::span<const RtValue> args, ExternContext& ctx) {
        const auto count = static_cast<std::uint64_t>(args[0].i);
        const std::uint64_t base =
            ctx.memory.allocate(std::max<std::uint64_t>(8, count * 8));
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t handle = allocateQubitHandle();
          ctx.memory.store(base + 8 * i, &handle, sizeof handle);
        }
        return RtValue::makePtr(base);
      });
  interp.bindExternal(std::string(qir::kRtQubitReleaseArray),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtArrayCreate1d),
                      [](std::span<const RtValue> args, ExternContext& ctx) {
                        const auto count = static_cast<std::uint64_t>(args[1].i);
                        return RtValue::makePtr(
                            ctx.memory.allocate(8 * std::max<std::uint64_t>(1, count)));
                      });
  interp.bindExternal(std::string(qir::kRtArrayGetElementPtr1d),
                      [](std::span<const RtValue> args, ExternContext&) {
                        return RtValue::makePtr(
                            args[0].p + 8 * static_cast<std::uint64_t>(args[1].i));
                      });
  interp.bindExternal(std::string(qir::kRtArrayUpdateRefCount),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtResultRecordOutput),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtArrayRecordOutput),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
}

// ---------------------------------------------------------------------------
// CliffordRuntime
// ---------------------------------------------------------------------------

std::uint64_t CliffordRuntime::allocateQubitHandle() {
  if (nextIndex_ >= state_.numQubits()) {
    throw TrapError("Clifford runtime qubit budget exhausted (reserve more "
                    "qubits up front)",
                    ErrorCode::ResourceLimit);
  }
  const std::uint64_t handle = nextDynamicHandle_++;
  qubitByHandle_[handle] = nextIndex_++;
  ++stats_.dynamicQubitsAllocated;
  return handle;
}

unsigned CliffordRuntime::resolveQubit(std::uint64_t address, ExternContext& ctx,
                                       bool canDeref) {
  if (address >= QuantumRuntime::kDynamicHandleBase) {
    const auto it = qubitByHandle_.find(address);
    if (it == qubitByHandle_.end()) {
      throw TrapError("use of released or invalid qubit handle",
                      ErrorCode::TrapInvalidQubit);
    }
    return it->second;
  }
  if (isArenaAddress(address)) {
    if (!canDeref) {
      throw TrapError("qubit argument is a memory address, not a handle",
                      ErrorCode::TrapInvalidQubit);
    }
    std::uint64_t handle = 0;
    ctx.memory.load(address, &handle, sizeof handle);
    return resolveQubit(handle, ctx, false);
  }
  // Static address: must fit the fixed register.
  if (address >= state_.numQubits()) {
    throw TrapError("static qubit address " + std::to_string(address) +
                        " exceeds the Clifford runtime's register of " +
                        std::to_string(state_.numQubits()),
                    ErrorCode::TrapInvalidQubit);
  }
  return static_cast<unsigned>(address);
}

bool CliffordRuntime::resultValue(std::uint64_t key) const {
  const auto it = results_.find(key);
  return it != results_.end() && it->second;
}

void CliffordRuntime::bind(interp::ExternalRegistry& interp) {
  // No fused kernels on the stabilizer backend: fused blocks replay call
  // by call (and non-Clifford gates keep trapping with their own names).
  interp.bindFusedHost(nullptr);
  using Handler = interp::ExternalRegistry::ExternalHandler;
  const auto gate1 =
      [this](void (sim::StabilizerSimulator::*apply)(unsigned)) -> Handler {
    return [this, apply](std::span<const RtValue> args, ExternContext& ctx) {
      (state_.*apply)(resolveQubit(argPtr(args, 0), ctx));
      ++stats_.gatesApplied;
      return RtValue::makeVoid();
    };
  };
  const auto gate2 = [this](void (sim::StabilizerSimulator::*apply)(
                         unsigned, unsigned)) -> Handler {
    return [this, apply](std::span<const RtValue> args, ExternContext& ctx) {
      (state_.*apply)(resolveQubit(argPtr(args, 0), ctx),
                      resolveQubit(argPtr(args, 1), ctx));
      ++stats_.gatesApplied;
      return RtValue::makeVoid();
    };
  };
  interp.bindExternal(std::string(qir::kQisH), gate1(&sim::StabilizerSimulator::h));
  interp.bindExternal(std::string(qir::kQisS), gate1(&sim::StabilizerSimulator::s));
  interp.bindExternal(std::string(qir::kQisSAdj),
                      gate1(&sim::StabilizerSimulator::sdg));
  interp.bindExternal(std::string(qir::kQisX), gate1(&sim::StabilizerSimulator::x));
  interp.bindExternal(std::string(qir::kQisY), gate1(&sim::StabilizerSimulator::y));
  interp.bindExternal(std::string(qir::kQisZ), gate1(&sim::StabilizerSimulator::z));
  interp.bindExternal(std::string(qir::kQisCNOT),
                      gate2(&sim::StabilizerSimulator::cx));
  interp.bindExternal(std::string(qir::kQisCZ),
                      gate2(&sim::StabilizerSimulator::cz));
  interp.bindExternal(std::string(qir::kQisSwap),
                      gate2(&sim::StabilizerSimulator::swap));
  interp.bindExternal(std::string(qir::kQisReset),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        state_.reset(resolveQubit(argPtr(args, 0), ctx), rng_);
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisMz),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const unsigned q = resolveQubit(argPtr(args, 0), ctx);
                        results_[argPtr(args, 1)] = state_.measure(q, rng_);
                        ++stats_.measurements;
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kQisReadResult),
                      [this](std::span<const RtValue> args, ExternContext&) {
                        return RtValue::makeInt(resultValue(argPtr(args, 0)) ? 1
                                                                             : 0);
                      });
  // Rotations are non-Clifford: fail loudly.
  for (const std::string_view name : {qir::kQisRX, qir::kQisRY, qir::kQisRZ,
                                      qir::kQisT, qir::kQisTAdj, qir::kQisCCX}) {
    interp.bindExternal(std::string(name),
                        [name](std::span<const RtValue>, ExternContext&) -> RtValue {
                          throw TrapError(std::string(name) +
                                              " is not a Clifford operation; "
                                              "use the statevector runtime",
                                          ErrorCode::Semantic);
                        });
  }
  interp.bindExternal(std::string(qir::kRtInitialize),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtQubitAllocate),
                      [this](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makePtr(allocateQubitHandle());
                      });
  interp.bindExternal(std::string(qir::kRtQubitRelease),
                      [this](std::span<const RtValue> args, ExternContext&) {
                        qubitByHandle_.erase(argPtr(args, 0));
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(
      std::string(qir::kRtQubitAllocateArray),
      [this](std::span<const RtValue> args, ExternContext& ctx) {
        const auto count = static_cast<std::uint64_t>(argInt(args, 0));
        const std::uint64_t base =
            ctx.memory.allocate(std::max<std::uint64_t>(8, count * 8));
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t handle = allocateQubitHandle();
          ctx.memory.store(base + 8 * i, &handle, sizeof handle);
        }
        ++stats_.arraysCreated;
        return RtValue::makePtr(base);
      });
  interp.bindExternal(std::string(qir::kRtQubitReleaseArray),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtArrayCreate1d),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const auto count = static_cast<std::uint64_t>(argInt(args, 1));
                        ++stats_.arraysCreated;
                        return RtValue::makePtr(ctx.memory.allocate(
                            8 * std::max<std::uint64_t>(1, count)));
                      });
  interp.bindExternal(std::string(qir::kRtArrayGetElementPtr1d),
                      [](std::span<const RtValue> args, ExternContext&) {
                        return RtValue::makePtr(
                            argPtr(args, 0) +
                            8 * static_cast<std::uint64_t>(argInt(args, 1)));
                      });
  interp.bindExternal(std::string(qir::kRtArrayUpdateRefCount),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtResultRecordOutput),
                      [this](std::span<const RtValue> args, ExternContext& ctx) {
                        const std::uint64_t labelPtr = argPtr(args, 1);
                        const std::string label =
                            labelPtr == 0 ? std::string{}
                                          : ctx.readCString(labelPtr);
                        output_.emplace_back(label, resultValue(argPtr(args, 0)));
                        return RtValue::makeVoid();
                      });
  interp.bindExternal(std::string(qir::kRtArrayRecordOutput),
                      [](std::span<const RtValue>, ExternContext&) {
                        return RtValue::makeVoid();
                      });
}

// ---------------------------------------------------------------------------

RunResult runQIRModule(const ir::Module& module, std::uint64_t seed,
                       qirkit::ThreadPool* pool) {
  interp::Interpreter interp(module);
  QuantumRuntime runtime(seed, pool);
  runtime.bind(interp);
  interp.runEntryPoint();
  return {runtime.stats(), runtime.recordedOutput(), interp.stats()};
}

} // namespace qirkit::runtime
