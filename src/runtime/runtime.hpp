/// \file runtime.hpp
/// The QIR quantum runtime (paper §III.C / Ex. 5): implementations of the
/// `__quantum__qis__*` and `__quantum__rt__*` functions that "modify the
/// internal state of the simulator to reflect the application of the
/// respective gate", registered as external-function bindings with the IR
/// interpreter (our `lli` analog).
///
/// Qubit addressing (paper §IV.A) is resolved uniformly:
///  * dynamic handles handed out by qubit_allocate[_array] live in a
///    reserved address region;
///  * arena addresses (array elements) are dereferenced to the stored
///    handle — supporting both the paper's Ex. 2 style (element pointer
///    passed directly) and the spec style (handle loaded first);
///  * any other small address is a *static* qubit id, allocated on the fly
///    the first time it is seen — the on-the-fly strategy the paper
///    describes for simulators with a variable number of qubits.
#pragma once

#include "circuit/circuit.hpp"
#include "interp/fused.hpp"
#include "interp/interpreter.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "support/rng.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qirkit::runtime {

/// Statistics and recorded program output of one execution.
struct RuntimeStats {
  std::uint64_t gatesApplied = 0;
  std::uint64_t measurements = 0;
  std::uint64_t dynamicQubitsAllocated = 0;
  std::uint64_t staticQubitsAllocated = 0; // on-the-fly (§IV.A)
  std::uint64_t arraysCreated = 0;
};

/// The simulator-backed runtime. Bind to an interpreter, run the entry
/// point, then inspect the state / recorded output. Also implements the
/// FusedGateHost fast path: the VM hands precomposed fused blocks (from
/// the compile-time gate-fusion pass) straight to the statevector's
/// apply1/apply2/applyDiagonal kernels.
class QuantumRuntime : public interp::FusedGateHost {
public:
  /// Reserved address region for dynamic qubit handles.
  static constexpr std::uint64_t kDynamicHandleBase = 0x5151000000000000ULL;

  /// How mz is realized. Collapse is the per-shot semantics (projective
  /// measurement, result table). Defer is the terminal-measurement
  /// sampling path: mz only records which simulator qubit backs each
  /// result key — the state never collapses — and the joint outcome
  /// distribution is drawn afterwards via sampleRecordedHistogram(). Only
  /// sound for programs vm::analyzeShotProfile classifies as Terminal
  /// (reset traps defensively on a non-|0> qubit, read_result sees an
  /// empty result table).
  enum class MeasurementMode : std::uint8_t { Collapse, Defer };

  explicit QuantumRuntime(std::uint64_t seed = 1, qirkit::ThreadPool* pool = nullptr,
                          sim::Precision precision = sim::Precision::F64)
      : state_(0, pool, precision), pool_(pool), precision_(precision),
        rng_(seed) {}

  /// Register every qis/rt handler with \p interp (and this runtime as
  /// the engine's fused-gate host, when the engine supports one).
  void bind(interp::ExternalRegistry& interp);

  /// Apply one precomposed fused block to the statevector. Qubit entries
  /// are static QIR addresses (the fusion pass only fuses those),
  /// resolved with the same on-the-fly first-seen allocation as ordinary
  /// gate calls.
  void applyFusedBlock(const interp::FusedBlock& block) override;

  /// Apply a run of consecutive fused blocks in one chunk-blocked pass
  /// (StateVector::applyFusedSweep). Qubits are resolved per block in run
  /// order, so on-the-fly allocation assigns the same simulator indices
  /// the per-block path would.
  void applyFusedSweep(std::span<const interp::FusedBlock> blocks) override;

  void setMeasurementMode(MeasurementMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] MeasurementMode measurementMode() const noexcept { return mode_; }

  /// Return to the freshly-constructed state with a new RNG seed, keeping
  /// every registered binding valid (handlers capture `this`). The batched
  /// shot executor uses this to run N shots without re-binding the 30+
  /// handlers per shot.
  void reset(std::uint64_t seed);

  /// §IV.A's *other* strategy for static addresses: instead of allocating
  /// "on the fly when it encounters a new qubit address", the runtime can
  /// "infer the number of qubits required for the simulation from the QIR
  /// program, such as via an attribute in the QIR file". Reads the entry
  /// point's required_num_qubits attribute and pre-allocates static ids
  /// 0..n-1. Returns the number reserved (0 when no attribute is present).
  unsigned preallocateFromAttributes(const ir::Module& module);

  /// Pre-allocate static qubit ids 0..n-1 up front.
  void reserveStaticQubits(unsigned n);

  [[nodiscard]] sim::StateVector& state() noexcept { return state_; }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }

  /// Install a cooperative cancellation token on the backing simulator
  /// (nullptr clears it). Survives reset(): the executor installs it once
  /// per batch, not once per shot.
  void setCancelToken(const qirkit::CancelToken* token) noexcept {
    cancel_ = token;
    state_.setCancelToken(token);
  }

  /// Result values by key (runtime-internal addressing).
  [[nodiscard]] bool resultValue(std::uint64_t key) const;

  /// Output recorded via __quantum__rt__result_record_output, in call
  /// order: (label, value).
  [[nodiscard]] const std::vector<std::pair<std::string, bool>>& recordedOutput()
      const noexcept {
    return output_;
  }

  /// Recorded output as a bit string (first-recorded bit leftmost).
  [[nodiscard]] std::string outputBitString() const;

  /// Defer mode only: draw \p shots joint outcomes from the final state
  /// (StateVector::sampleShots) and expand each sampled basis state into
  /// the bit-string format outputBitString() produces under Collapse —
  /// one bit per result_record_output call, first-recorded leftmost.
  /// Returns bit string -> shot count.
  [[nodiscard]] std::map<std::string, std::uint64_t> sampleRecordedHistogram(
      std::uint64_t shots, SplitMix64& rng) const;

private:
  std::uint64_t allocateQubitHandle();
  /// Resolve a Qubit* argument to a simulator index (see file comment).
  unsigned resolveQubit(std::uint64_t address, interp::ExternContext& ctx,
                        bool canDeref = true);
  /// The static-address leg of resolveQubit: first-seen on-the-fly
  /// allocation (§IV.A), shared with the fused-block path.
  unsigned resolveStaticQubit(std::uint64_t address);
  /// Resolve a Result* argument to a result-table key.
  static std::uint64_t resultKey(std::uint64_t address) noexcept { return address; }

  sim::StateVector state_;
  qirkit::ThreadPool* pool_;
  sim::Precision precision_ = sim::Precision::F64;
  const qirkit::CancelToken* cancel_ = nullptr;
  SplitMix64 rng_;
  RuntimeStats stats_;
  std::map<std::uint64_t, unsigned> qubitByHandle_; // handle or static id -> sim index
  std::uint64_t nextDynamicHandle_ = kDynamicHandleBase;
  std::map<std::uint64_t, bool> results_;
  std::map<std::uint64_t, std::uint64_t> arraySizes_;
  std::vector<std::pair<std::string, bool>> output_;
  MeasurementMode mode_ = MeasurementMode::Collapse;
  /// Defer mode: result key -> simulator qubit index backing it.
  std::map<std::uint64_t, unsigned> resultQubit_;
  /// Defer mode: result_record_output calls as (label, result key).
  std::vector<std::pair<std::string, std::uint64_t>> deferredOutput_;
};

/// A runtime that *records* the instruction trace as a circuit instead of
/// simulating it (measurements read from a fixed outcome provider). This
/// demonstrates the orthogonality the paper notes in §III.C: the runtime
/// route only concerns the implementation of the quantum instructions —
/// here the same program structure drives circuit reconstruction instead
/// of simulation.
class RecordingRuntime {
public:
  void bind(interp::ExternalRegistry& interp);

  [[nodiscard]] const circuit::Circuit& recorded() const noexcept { return circuit_; }

private:
  unsigned resolveQubit(std::uint64_t address, interp::ExternContext& ctx,
                        bool canDeref = true);
  std::uint64_t allocateQubitHandle();

  circuit::Circuit circuit_;
  std::map<std::uint64_t, unsigned> qubitByHandle_;
  std::map<std::uint64_t, std::uint32_t> bitByResult_;
  std::uint64_t nextDynamicHandle_ = QuantumRuntime::kDynamicHandleBase;
};

/// A stabilizer-simulator-backed runtime for Clifford QIR programs —
/// the "classical simulation techniques" swap of Ex. 5 at system level:
/// the same program structure and qis/rt interface, a polynomially
/// scaling backend (hundreds of qubits). Non-Clifford instructions
/// (rotations) trap. The qubit count must be known up front (static
/// addressing via required_num_qubits, or reserve() before binding);
/// dynamic allocation is supported within the reserved budget.
class CliffordRuntime {
public:
  explicit CliffordRuntime(unsigned numQubits, std::uint64_t seed = 1)
      : state_(numQubits), rng_(seed) {}

  void bind(interp::ExternalRegistry& interp);

  [[nodiscard]] sim::StabilizerSimulator& state() noexcept { return state_; }
  [[nodiscard]] bool resultValue(std::uint64_t key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, bool>>& recordedOutput()
      const noexcept {
    return output_;
  }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }

private:
  unsigned resolveQubit(std::uint64_t address, interp::ExternContext& ctx,
                        bool canDeref = true);
  std::uint64_t allocateQubitHandle();

  sim::StabilizerSimulator state_;
  SplitMix64 rng_;
  RuntimeStats stats_;
  std::map<std::uint64_t, unsigned> qubitByHandle_;
  unsigned nextIndex_ = 0;
  std::uint64_t nextDynamicHandle_ = QuantumRuntime::kDynamicHandleBase;
  std::map<std::uint64_t, bool> results_;
  std::vector<std::pair<std::string, bool>> output_;
};

/// Convenience: parse-free execution of a QIR module — build an
/// interpreter, bind a fresh runtime, run the entry point. Returns the
/// runtime for inspection.
struct RunResult {
  RuntimeStats stats;
  std::vector<std::pair<std::string, bool>> output;
  interp::InterpStats interpStats;
};

[[nodiscard]] RunResult runQIRModule(const ir::Module& module, std::uint64_t seed = 1,
                                     qirkit::ThreadPool* pool = nullptr);

} // namespace qirkit::runtime
